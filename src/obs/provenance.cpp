#include "obs/provenance.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>

#include "obs/json_reader.hpp"
#include "obs/metrics.hpp"  // format_metric_value

namespace mantle::obs {

namespace {

using jsonr::JsonReader;
using jsonr::JsonValue;

std::string u64(std::uint64_t x) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, x);
  return buf;
}

std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

/// Short fixed-precision number for the explain narrative (the JSON
/// path uses format_metric_value for exact round-trips instead).
std::string num(double x) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", x);
  return buf;
}

std::string secs(Time t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(t) / 1e6);
  return buf;
}

// FNV-1a 64-bit.
struct Fnv {
  std::uint64_t h = 1469598103934665603ULL;
  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ULL;
    }
  }
  void f64(double x) { bytes(&x, sizeof(x)); }
  void u(std::uint64_t x) { bytes(&x, sizeof(x)); }
};

}  // namespace

std::string input_digest(const DecisionRecord& rec) {
  Fnv f;
  f.u(static_cast<std::uint64_t>(rec.at));
  f.u(static_cast<std::uint64_t>(static_cast<std::int64_t>(rec.rank)));
  f.f64(rec.min_load);
  f.f64(rec.total_load);
  f.u(rec.loads.size());
  for (const double x : rec.loads) f.f64(x);
  for (const std::uint8_t a : rec.alive) f.u(a);
  for (const HookInputRow& r : rec.mdss) {
    f.f64(r.auth_metaload);
    f.f64(r.all_metaload);
    f.f64(r.cpu_pct);
    f.f64(r.mem_pct);
    f.f64(r.queue_len);
    f.f64(r.req_rate);
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, f.h);
  return buf;
}

std::string DecisionRecord::to_json() const {
  std::string out = "{";
  out += "\"alive\":[";
  for (std::size_t i = 0; i < alive.size(); ++i) {
    if (i > 0) out += ",";
    out += alive[i] != 0 ? "1" : "0";
  }
  out += "],\"at_us\":" + u64(static_cast<std::uint64_t>(at));
  out += ",\"cache_hits\":" + u64(cache_hits);
  out += ",\"cache_misses\":" + u64(cache_misses);
  out += ",\"cache_recompiles\":" + u64(cache_recompiles);
  out += ",\"digest\":" + json_str(digest);
  out += ",\"go\":" + std::string(go ? "true" : "false");
  out += ",\"hook_errors\":" + u64(hook_errors);
  out += ",\"loads\":[";
  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (i > 0) out += ",";
    out += format_metric_value(loads[i]);
  }
  out += "],\"lua_steps\":" + u64(lua_steps);
  out += ",\"mdss\":[";
  for (std::size_t i = 0; i < mdss.size(); ++i) {
    const HookInputRow& r = mdss[i];
    if (i > 0) out += ",";
    out += "{\"all\":" + format_metric_value(r.all_metaload);
    out += ",\"auth\":" + format_metric_value(r.auth_metaload);
    out += ",\"cpu\":" + format_metric_value(r.cpu_pct);
    out += ",\"mem\":" + format_metric_value(r.mem_pct);
    out += ",\"q\":" + format_metric_value(r.queue_len);
    out += ",\"req\":" + format_metric_value(r.req_rate) + "}";
  }
  out += "],\"min_load\":" + format_metric_value(min_load);
  out += ",\"policy\":" + json_str(policy);
  out += ",\"rank\":" + std::to_string(rank);
  out += ",\"selectors\":[";
  for (std::size_t i = 0; i < selectors.size(); ++i) {
    if (i > 0) out += ",";
    out += json_str(selectors[i]);
  }
  out += "],\"ships\":[";
  for (std::size_t i = 0; i < ships.size(); ++i) {
    const ProvenanceShipment& s = ships[i];
    if (i > 0) out += ",";
    out += "{\"goal\":" + format_metric_value(s.goal);
    out += ",\"picks\":[";
    for (std::size_t j = 0; j < s.picks.size(); ++j) {
      const ProvenancePick& p = s.picks[j];
      if (j > 0) out += ",";
      out += "{\"entries\":" + u64(p.entries);
      out += ",\"frag\":" + json_str(p.frag);
      out += ",\"load\":" + format_metric_value(p.load) + "}";
    }
    out += "],\"pool\":" + u64(s.pool);
    out += ",\"shipped\":" + format_metric_value(s.shipped);
    out += ",\"target\":" + std::to_string(s.target) + "}";
  }
  out += "]";
  if (span >= 0) out += ",\"span\":" + u64(static_cast<std::uint64_t>(span));
  out += ",\"targets\":[";
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (i > 0) out += ",";
    out += format_metric_value(targets[i]);
  }
  out += "],\"total_load\":" + format_metric_value(total_load);
  out += ",\"truncated\":" + std::string(truncated ? "true" : "false");
  out += "}";
  return out;
}

void ProvenanceRecorder::attach_counters(Counter* recorded, Counter* dropped) {
  std::lock_guard<std::mutex> lock(mu_);
  c_recorded_ = recorded;
  c_dropped_ = dropped;
}

void ProvenanceRecorder::enable_sharding(int shards) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shards > 0 && lanes_.size() < static_cast<std::size_t>(shards))
    lanes_.resize(static_cast<std::size_t>(shards));
}

bool ProvenanceRecorder::store_locked(DecisionRecord rec) {
  if (records_.size() >= capacity_) {
    ++dropped_;
    if (c_dropped_ != nullptr) c_dropped_->inc();
    return false;
  }
  records_.push_back(std::move(rec));
  if (c_recorded_ != nullptr) c_recorded_->inc();
  return true;
}

void ProvenanceRecorder::drain_shards() {
  std::lock_guard<std::mutex> lock(mu_);
  for (ShardLane& lane : lanes_) {
    for (DecisionRecord& rec : lane.buffer) store_locked(std::move(rec));
    lane.buffer.clear();
  }
}

bool ProvenanceRecorder::record(DecisionRecord rec) {
  if (!lanes_.empty()) {
    const int s = lane_shard();
    if (s >= 0 && s < static_cast<int>(lanes_.size())) {
      // Shard lane: one thread per shard, no lock; accept/drop and the
      // counter bumps happen in canonical order at drain_shards().
      lanes_[static_cast<std::size_t>(s)].buffer.push_back(std::move(rec));
      return true;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  return store_locked(std::move(rec));
}

std::vector<DecisionRecord> ProvenanceRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

std::uint64_t ProvenanceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::size_t ProvenanceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

void ProvenanceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  dropped_ = 0;
  for (ShardLane& lane : lanes_) lane.buffer.clear();
}

std::string ProvenanceRecorder::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"dropped\":" + u64(dropped_) + ",\"records\":[";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (i > 0) out += ",";
    out += records_[i].to_json();
  }
  out += "]}";
  return out;
}

std::vector<DecisionRecord> parse_provenance_json(const std::string& json) {
  std::vector<DecisionRecord> out;
  const JsonValue root = JsonReader(json).parse();
  const JsonValue* records = root.get("records");
  if (records == nullptr || records->type != JsonValue::Type::Array)
    return out;
  for (const JsonValue& e : records->arr) {
    if (e.type != JsonValue::Type::Object) continue;
    DecisionRecord rec;
    if (const JsonValue* v = e.get("at_us"))
      rec.at = static_cast<Time>(v->num);
    if (const JsonValue* v = e.get("rank"))
      rec.rank = static_cast<int>(v->num);
    if (const JsonValue* v = e.get("span"))
      rec.span = static_cast<SpanId>(v->num);
    if (const JsonValue* v = e.get("policy")) rec.policy = v->str;
    if (const JsonValue* v = e.get("min_load")) rec.min_load = v->num;
    if (const JsonValue* v = e.get("total_load")) rec.total_load = v->num;
    if (const JsonValue* v = e.get("digest")) rec.digest = v->str;
    if (const JsonValue* v = e.get("truncated")) rec.truncated = v->b;
    if (const JsonValue* v = e.get("go")) rec.go = v->b;
    if (const JsonValue* v = e.get("lua_steps"))
      rec.lua_steps = static_cast<std::uint64_t>(v->num);
    if (const JsonValue* v = e.get("hook_errors"))
      rec.hook_errors = static_cast<std::uint64_t>(v->num);
    if (const JsonValue* v = e.get("cache_hits"))
      rec.cache_hits = static_cast<std::uint64_t>(v->num);
    if (const JsonValue* v = e.get("cache_misses"))
      rec.cache_misses = static_cast<std::uint64_t>(v->num);
    if (const JsonValue* v = e.get("cache_recompiles"))
      rec.cache_recompiles = static_cast<std::uint64_t>(v->num);
    if (const JsonValue* v = e.get("loads");
        v != nullptr && v->type == JsonValue::Type::Array)
      for (const JsonValue& x : v->arr) rec.loads.push_back(x.num);
    if (const JsonValue* v = e.get("alive");
        v != nullptr && v->type == JsonValue::Type::Array)
      for (const JsonValue& x : v->arr)
        rec.alive.push_back(x.num != 0.0 ? 1 : 0);
    if (const JsonValue* v = e.get("targets");
        v != nullptr && v->type == JsonValue::Type::Array)
      for (const JsonValue& x : v->arr) rec.targets.push_back(x.num);
    if (const JsonValue* v = e.get("selectors");
        v != nullptr && v->type == JsonValue::Type::Array)
      for (const JsonValue& x : v->arr) rec.selectors.push_back(x.str);
    if (const JsonValue* v = e.get("mdss");
        v != nullptr && v->type == JsonValue::Type::Array)
      for (const JsonValue& m : v->arr) {
        HookInputRow row;
        if (const JsonValue* x = m.get("auth")) row.auth_metaload = x->num;
        if (const JsonValue* x = m.get("all")) row.all_metaload = x->num;
        if (const JsonValue* x = m.get("cpu")) row.cpu_pct = x->num;
        if (const JsonValue* x = m.get("mem")) row.mem_pct = x->num;
        if (const JsonValue* x = m.get("q")) row.queue_len = x->num;
        if (const JsonValue* x = m.get("req")) row.req_rate = x->num;
        rec.mdss.push_back(row);
      }
    if (const JsonValue* v = e.get("ships");
        v != nullptr && v->type == JsonValue::Type::Array)
      for (const JsonValue& s : v->arr) {
        ProvenanceShipment ship;
        if (const JsonValue* x = s.get("target"))
          ship.target = static_cast<int>(x->num);
        if (const JsonValue* x = s.get("goal")) ship.goal = x->num;
        if (const JsonValue* x = s.get("pool"))
          ship.pool = static_cast<std::uint64_t>(x->num);
        if (const JsonValue* x = s.get("shipped")) ship.shipped = x->num;
        if (const JsonValue* x = s.get("picks");
            x != nullptr && x->type == JsonValue::Type::Array)
          for (const JsonValue& p : x->arr) {
            ProvenancePick pick;
            if (const JsonValue* y = p.get("frag")) pick.frag = y->str;
            if (const JsonValue* y = p.get("load")) pick.load = y->num;
            if (const JsonValue* y = p.get("entries"))
              pick.entries = static_cast<std::uint64_t>(y->num);
            ship.picks.push_back(std::move(pick));
          }
        rec.ships.push_back(std::move(ship));
      }
    out.push_back(std::move(rec));
  }
  return out;
}

std::string render_explain(const std::vector<DecisionRecord>& records,
                           const std::vector<TraceEvent>& events,
                           const ExplainOptions& opt) {
  // Index migration spans: export-starts by their parent (the balancer
  // tick span), and the terminal commit/abort by migration span.
  struct Start {
    SpanId span = kNoSpan;
    int peer = -1;
    std::string detail;
  };
  std::map<SpanId, std::vector<Start>> starts_by_parent;
  std::map<SpanId, std::pair<char, Time>> finish_by_span;  // 'c' | 'a'
  for (const TraceEvent& ev : events) {
    if (ev.kind == EventKind::ExportStart && ev.parent >= 0)
      starts_by_parent[ev.parent].push_back({ev.span, ev.peer, ev.detail});
    else if (ev.kind == EventKind::ExportCommit && ev.span >= 0)
      finish_by_span[ev.span] = {'c', ev.at};
    else if (ev.kind == EventKind::ExportAbort && ev.span >= 0)
      finish_by_span[ev.span] = {'a', ev.at};
  }

  const Time tick_us = opt.tick_us > 0 ? opt.tick_us : kSec;
  std::string out;
  std::uint64_t shown = 0;
  for (const DecisionRecord& rec : records) {
    const auto tick = static_cast<std::int64_t>(rec.at / tick_us);
    if (opt.tick >= 0 && tick != opt.tick) continue;
    if (opt.rank >= 0 && rec.rank != opt.rank) continue;
    ++shown;

    std::size_t alive_count = 0;
    for (const std::uint8_t a : rec.alive) alive_count += a != 0 ? 1 : 0;
    const double my_load =
        rec.rank >= 0 && static_cast<std::size_t>(rec.rank) < rec.loads.size()
            ? rec.loads[static_cast<std::size_t>(rec.rank)]
            : 0.0;
    const double mean =
        alive_count > 0 ? rec.total_load / static_cast<double>(alive_count)
                        : 0.0;

    out += "[t=" + secs(rec.at) + " tick " + std::to_string(tick) + "] rank " +
           std::to_string(rec.rank);
    if (rec.span >= 0)
      out += " span " + u64(static_cast<std::uint64_t>(rec.span));
    out += " policy=" + rec.policy + ": ";
    out += rec.go ? "GO" : "HOLD";
    out += " — load " + num(my_load);
    if (mean > 0.0) out += " (" + num(my_load / mean) + "x mean " + num(mean);
    else out += " (mean 0";
    out += ", total " + num(rec.total_load) + " over " +
           std::to_string(alive_count) + " alive)";
    if (!rec.go && rec.total_load < rec.min_load)
      out += " [below min_load " + num(rec.min_load) + "]";
    out += "\n";

    if (rec.go) {
      out += "  targets:";
      bool any = false;
      for (std::size_t t = 0; t < rec.targets.size(); ++t) {
        if (rec.targets[t] <= 0.0) continue;
        out += std::string(any ? "," : "") + " r" + std::to_string(t) + " +" +
               num(rec.targets[t]);
        any = true;
      }
      if (!any) out += " none";
      out += "; selectors:";
      if (rec.selectors.empty()) out += " none";
      for (const std::string& s : rec.selectors) out += " " + s;
      out += "\n";
    }

    const auto* starts = [&]() -> const std::vector<Start>* {
      const auto it = starts_by_parent.find(rec.span);
      return it != starts_by_parent.end() ? &it->second : nullptr;
    }();
    for (const ProvenanceShipment& ship : rec.ships) {
      out += "  ship -> r" + std::to_string(ship.target) + ": goal " +
             num(ship.goal) + ", pool " + u64(ship.pool) + ", picked " +
             u64(ship.picks.size()) + ", shipped " + num(ship.shipped) + "\n";
      for (const ProvenancePick& pick : ship.picks) {
        out += "    - " + pick.frag + " load " + num(pick.load) + " entries " +
               u64(pick.entries);
        // Resolve the migration outcome via the span tree.
        std::string outcome = "unresolved";
        if (starts != nullptr)
          for (const Start& st : *starts)
            if (st.peer == ship.target && st.detail == pick.frag) {
              const auto fin = finish_by_span.find(st.span);
              if (fin == finish_by_span.end())
                outcome = "in-flight";
              else if (fin->second.first == 'c')
                outcome = "committed @" + secs(fin->second.second);
              else
                outcome = "aborted @" + secs(fin->second.second);
              break;
            }
        out += " [" + outcome + "]\n";
      }
    }

    out += "  eval: " + u64(rec.lua_steps) + " Lua steps, cache " +
           u64(rec.cache_hits) + " hit/" + u64(rec.cache_misses) + " miss";
    if (rec.cache_recompiles > 0)
      out += "/" + u64(rec.cache_recompiles) + " recompile";
    out += ", " + u64(rec.hook_errors) + " hook errors";
    if (rec.truncated) out += " [inputs truncated]";
    out += " digest=" + rec.digest + "\n";
  }
  out += u64(shown) + " decision(s)";
  if (shown != records.size())
    out += " (of " + u64(static_cast<std::uint64_t>(records.size())) + ")";
  out += "\n";
  return out;
}

}  // namespace mantle::obs
