#include "obs/profile.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mantle::obs {
namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Innermost live scope on this thread; children charge their wall
// time to the parent so self-time stays additive.
thread_local ScopedPhase* g_top = nullptr;

// "engine-dispatch" -> "engine_dispatch" for metric-name keys.
std::string underscored(ProfilePhase p) {
  std::string s = profile_phase_name(p);
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

std::string ms(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

}  // namespace

const char* profile_phase_name(ProfilePhase p) {
  switch (p) {
    case ProfilePhase::EngineDispatch:
      return "engine-dispatch";
    case ProfilePhase::ClusterTick:
      return "cluster-tick";
    case ProfilePhase::HookEval:
      return "hook-eval";
    case ProfilePhase::PopulationSample:
      return "population-sample";
    case ProfilePhase::TraceIo:
      return "trace-io";
  }
  return "unknown";
}

std::string profile_metric_name(ProfilePhase p) {
  return "mantle_profile_" + underscored(p) + "_scopes_total";
}

Profiler::Profiler() {
  const char* env = std::getenv("MANTLE_PROFILE");
  if (env != nullptr && std::strcmp(env, "0") == 0) {
    enabled_.store(false, std::memory_order_relaxed);
  }
}

Profiler& Profiler::instance() {
  static Profiler p;
  return p;
}

void Profiler::add(ProfilePhase p, std::uint64_t wall_ns,
                   std::uint64_t self_ns) {
  Cell& c = cells_[static_cast<int>(p)];
  c.scopes.fetch_add(1, std::memory_order_relaxed);
  c.wall.fetch_add(wall_ns, std::memory_order_relaxed);
  c.self.fetch_add(self_ns, std::memory_order_relaxed);
}

Profiler::PhaseStats Profiler::stats(ProfilePhase p) const {
  const Cell& c = cells_[static_cast<int>(p)];
  PhaseStats s;
  s.scopes = c.scopes.load(std::memory_order_relaxed);
  s.wall_ns = c.wall.load(std::memory_order_relaxed);
  s.self_ns = c.self.load(std::memory_order_relaxed);
  return s;
}

std::array<Profiler::PhaseStats, kNumProfilePhases> Profiler::snapshot()
    const {
  std::array<PhaseStats, kNumProfilePhases> out{};
  for (int i = 0; i < kNumProfilePhases; ++i) {
    out[i] = stats(static_cast<ProfilePhase>(i));
  }
  return out;
}

void Profiler::reset() {
  for (Cell& c : cells_) {
    c.scopes.store(0, std::memory_order_relaxed);
    c.wall.store(0, std::memory_order_relaxed);
    c.self.store(0, std::memory_order_relaxed);
  }
}

std::string Profiler::table() const {
  std::string out;
  out += "phase              scopes      wall_ms      self_ms\n";
  for (int i = 0; i < kNumProfilePhases; ++i) {
    const ProfilePhase p = static_cast<ProfilePhase>(i);
    const PhaseStats s = stats(p);
    char line[128];
    std::snprintf(line, sizeof(line), "%-17s %7llu %12s %12s\n",
                  profile_phase_name(p),
                  static_cast<unsigned long long>(s.scopes),
                  ms(s.wall_ns).c_str(), ms(s.self_ns).c_str());
    out += line;
  }
  return out;
}

std::string Profiler::to_json() const {
  std::string out = "{";
  bool first = true;
  for (int i = 0; i < kNumProfilePhases; ++i) {
    const ProfilePhase p = static_cast<ProfilePhase>(i);
    const PhaseStats s = stats(p);
    const std::string base = "mantle_profile_" + underscored(p);
    if (!first) out += ",";
    first = false;
    out += "\"" + profile_metric_name(p) +
           "\":" + std::to_string(s.scopes);
    out += ",\"" + base + "_wall_ms\":" + ms(s.wall_ns);
    out += ",\"" + base + "_self_ms\":" + ms(s.self_ns);
  }
  out += "}";
  return out;
}

ScopedPhase::ScopedPhase(ProfilePhase p) : phase_(p) {
  Profiler& prof = Profiler::instance();
  if (!prof.enabled()) return;
  active_ = true;
  start_ns_ = now_ns();
  parent_ = g_top;
  g_top = this;
}

ScopedPhase::~ScopedPhase() {
  if (!active_) return;
  const std::uint64_t wall = now_ns() - start_ns_;
  g_top = parent_;
  if (parent_ != nullptr) parent_->child_ns_ += wall;
  const std::uint64_t self = wall > child_ns_ ? wall - child_ns_ : 0;
  Profiler::instance().add(phase_, wall, self);
}

}  // namespace mantle::obs
