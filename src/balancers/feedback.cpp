#include "balancers/feedback.hpp"

#include <algorithm>

namespace mantle::balancers {

bool FeedbackBalancer::when(const cluster::ClusterView& view) {
  last_output_ = 0.0;
  if (view.total_load <= 0.0 || view.size() < 2) return false;

  const double share =
      view.loads[static_cast<std::size_t>(view.whoami)] / view.total_load;
  if (smoothed_share_ < 0.0)
    smoothed_share_ = share;
  else
    smoothed_share_ =
        opt_.ewma_alpha * share + (1.0 - opt_.ewma_alpha) * smoothed_share_;

  const double target = 1.0 / static_cast<double>(view.size());
  const double error = smoothed_share_ - target;

  if (std::abs(error) <= opt_.deadband) {
    // Near balance: bleed the integral so it cannot wind up and cause a
    // correction burst later.
    integral_ *= 0.5;
    return false;
  }

  integral_ = std::clamp(integral_ + error, -opt_.integral_cap,
                         opt_.integral_cap);
  const double u = opt_.kp * error + opt_.ki * integral_;
  if (u <= 0.0) return false;  // underloaded: importing is the peers' job

  last_output_ = std::min(u, 0.9) * view.total_load;
  return last_output_ > 0.0;
}

std::vector<double> FeedbackBalancer::where(const cluster::ClusterView& view) {
  std::vector<double> targets(view.size(), 0.0);
  if (last_output_ <= 0.0) return targets;
  // Distribute the controller output across peers in proportion to their
  // deficit below the even share.
  const double even = view.total_load / static_cast<double>(view.size());
  double total_deficit = 0.0;
  for (std::size_t i = 0; i < view.size(); ++i) {
    if (static_cast<int>(i) == view.whoami) continue;
    total_deficit += std::max(0.0, even - view.loads[i]);
  }
  if (total_deficit <= 0.0) return targets;
  for (std::size_t i = 0; i < view.size(); ++i) {
    if (static_cast<int>(i) == view.whoami) continue;
    const double deficit = std::max(0.0, even - view.loads[i]);
    targets[i] = last_output_ * deficit / total_deficit;
  }
  return targets;
}

}  // namespace mantle::balancers
