#pragma once

#include <memory>

#include "cluster/balancer.hpp"

/// \file builtin.hpp
/// Native C++ implementations of every balancing policy the paper
/// evaluates. These serve two purposes: (1) the "policies tied to
/// mechanisms" baseline the paper criticizes (OriginalBalancer is Table 1
/// verbatim), and (2) ground truth for differential tests against the
/// same policies expressed as Mantle/Lua scripts — both forms must make
/// identical decisions on identical views.

namespace mantle::balancers {

using cluster::Balancer;
using cluster::ClusterView;
using cluster::HeartbeatPayload;
using cluster::PopSnapshot;

/// The hard-coded CephFS balancer of Table 1:
///   metaload = IRD + 2*IWR + READDIR + 2*FETCH + 4*STORE
///   MDSload  = 0.8*auth + 0.2*all + req_rate + 10*queue_len
///   when     = my load > total/#MDS
///   where    = match exporters to importers; send my excess toward each
///              importer's deficit
///   howmuch  = biggest dirfrags first
class OriginalBalancer final : public Balancer {
 public:
  std::string name() const override { return "cephfs-original"; }
  double metaload(const PopSnapshot& pop) const override;
  double mdsload(const HeartbeatPayload& hb) const override;
  bool when(const ClusterView& view) override;
  std::vector<double> where(const ClusterView& view) override;
  std::vector<std::string> howmuch() const override { return {"big_first"}; }
};

/// Listing 1 — Greedy Spill (GIGA+-style uniform spilling):
///   metaload = IWR; mdsload = all metaload;
///   when  = I have load and my right neighbour has none;
///   where = send half my load to the right neighbour;
///   howmuch = "half" (ship exactly half the dirfrags).
class GreedySpillBalancer final : public Balancer {
 public:
  std::string name() const override { return "greedy-spill"; }
  double metaload(const PopSnapshot& pop) const override { return pop.iwr; }
  double mdsload(const HeartbeatPayload& hb) const override {
    return hb.all_metaload;
  }
  bool when(const ClusterView& view) override;
  std::vector<double> where(const ClusterView& view) override;
  std::vector<std::string> howmuch() const override { return {"half"}; }
};

/// Listing 2 — Greedy Spill, Evenly: like Greedy Spill, but the target is
/// found by bisecting the cluster: whoami + ceil(remaining/2), walking
/// back toward whoami past already-loaded nodes, so load doubles across
/// the cluster instead of halving along a chain.
///
/// Note: the listing as printed walks the candidate index down `while
/// MDSs[t] < .01` which can never reach its own `MDSs[t]["load"] < .01`
/// success condition; the search as *described* in the text ("iterates
/// over a subset of the MDS nodes in its search for an underutilized
/// MDS") walks past loaded nodes. We implement the described semantics
/// (see EXPERIMENTS.md).
class GreedySpillEvenBalancer final : public Balancer {
 public:
  std::string name() const override { return "greedy-spill-even"; }
  double metaload(const PopSnapshot& pop) const override { return pop.iwr; }
  double mdsload(const HeartbeatPayload& hb) const override {
    return hb.all_metaload;
  }
  bool when(const ClusterView& view) override;
  std::vector<double> where(const ClusterView& view) override;
  std::vector<std::string> howmuch() const override { return {"half"}; }

  /// The bisection target for a given rank/cluster size (1-based math as
  /// in the listing); returns kNoRank when the listing's formula lands on
  /// an undefined (fractional) index.
  static mantle::mds::MdsRank bisect_target(int whoami0, int n);

 private:
  mantle::mds::MdsRank target_ = mantle::mds::kNoRank;  // found by when()
};

/// Listing 3 — Fill & Spill (LARD-flavoured): fill one MDS to a CPU
/// threshold, then spill a fixed fraction of load to the next MDS; a
/// 3-iteration hold (WRstate/RDstate in the Lua version) keeps the
/// balancer from over-reacting to its own stale heartbeats.
class FillSpillBalancer final : public Balancer {
 public:
  struct Options {
    double cpu_threshold = 48.0;  // from the paper's capacity study (§2.2.3)
    double spill_fraction = 0.25; // paper: 25% beats 10%
    /// Confirmations required before spilling: the first overloaded tick
    /// arms the hold and each further consecutive overloaded tick counts
    /// it down, so spilling starts on overloaded tick hold_iterations+1
    /// ("overloaded for 3 straight iterations" with the default 2). Any
    /// cool tick re-arms the full hold.
    int hold_iterations = 2;
  };

  FillSpillBalancer() : FillSpillBalancer(Options{}) {}
  explicit FillSpillBalancer(Options opt)
      : opt_(opt), wait_(opt.hold_iterations) {}

  std::string name() const override { return "fill-and-spill"; }
  double metaload(const PopSnapshot& pop) const override {
    return pop.ird + pop.iwr;
  }
  double mdsload(const HeartbeatPayload& hb) const override {
    return hb.all_metaload;
  }
  bool when(const ClusterView& view) override;
  std::vector<double> where(const ClusterView& view) override;
  std::vector<std::string> howmuch() const override {
    return {"small_first"};  // spill small units to shed just enough
  }

  int state_wait() const { return wait_; }

 private:
  Options opt_{};
  int wait_ = 0;   // the WRstate/RDstate counter of Listing 3; armed to
                   // hold_iterations by the constructors and on cool ticks
  bool go_ = false;
};

/// Listing 4 — Adaptable balancer (simplified original CephFS policy):
/// a single severely-overloaded MDS (more than half the cluster load, and
/// the maximum) sheds load toward everyone's deficit. Aggressiveness is
/// tunable to reproduce the three behaviours of Figure 10.
class AdaptableBalancer final : public Balancer {
 public:
  enum class Mode {
    kConservative,  // adds a minimum-offload gate: one big migration late
    kAggressive,    // Listing 4 as written: distribute on majority-load
    kTooAggressive, // rebalance on any imbalance: constant churn
  };

  struct Options {
    Mode mode = Mode::kAggressive;
    double min_offload = 0.0;  // absolute load gate for kConservative
  };

  AdaptableBalancer() = default;
  explicit AdaptableBalancer(Options opt) : opt_(opt) {}

  std::string name() const override { return "adaptable"; }
  double metaload(const PopSnapshot& pop) const override {
    return pop.iwr + pop.ird;
  }
  double mdsload(const HeartbeatPayload& hb) const override {
    return hb.all_metaload;
  }
  bool when(const ClusterView& view) override;
  std::vector<double> where(const ClusterView& view) override;
  std::vector<std::string> howmuch() const override {
    return {"half", "small_first", "big_first", "big_small"};
  }

 private:
  Options opt_{};
};

/// Hash baseline: distributes every directory round-robin/hashed across
/// the cluster regardless of load or locality (the "Compute it — Hashing"
/// family in related work; used by the Figure 3 locality study).
class HashBalancer final : public Balancer {
 public:
  std::string name() const override { return "hash-distribute"; }
  double metaload(const PopSnapshot& pop) const override;
  double mdsload(const HeartbeatPayload& hb) const override {
    return hb.auth_metaload;
  }
  bool when(const ClusterView& view) override;
  std::vector<double> where(const ClusterView& view) override;
  std::vector<std::string> howmuch() const override { return {"half"}; }
};

}  // namespace mantle::balancers
