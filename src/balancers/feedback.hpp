#pragma once

#include <vector>

#include "cluster/balancer.hpp"

/// \file feedback.hpp
/// Extension balancer from the paper's future-work list (§4.4: "Mantle's
/// ability to save state should accommodate balancers that use ...
/// control feedback loops"). A PI controller drives this MDS's share of
/// the cluster load toward 1/N:
///
///   error    = my_share - 1/N          (EWMA-smoothed to tame the noisy
///                                       instantaneous metrics of §2.2.2)
///   integral = clamp(integral + error)
///   export   = (Kp * error + Ki * integral) * total_load   when positive
///
/// Compared to Greedy Spill (bang-bang: all-or-half) and the original
/// balancer (proportional only, no memory), the integral term lets the
/// controller correct persistent small imbalances without overreacting
/// to one noisy sample, and the deadband keeps it quiet near balance —
/// directly addressing "searching for balance too aggressively increases
/// the standard deviation in runtime".

namespace mantle::balancers {

class FeedbackBalancer final : public cluster::Balancer {
 public:
  struct Options {
    double kp = 0.5;           // proportional gain
    double ki = 0.05;          // integral gain
    double deadband = 0.12;    // |share error| below this: do nothing
    double ewma_alpha = 0.8;   // smoothing of the observed share
    double integral_cap = 0.5;
  };

  FeedbackBalancer() = default;
  explicit FeedbackBalancer(Options opt) : opt_(opt) {}

  std::string name() const override { return "feedback-pi"; }

  double metaload(const cluster::PopSnapshot& pop) const override {
    return pop.iwr + pop.ird + pop.readdir;
  }
  double mdsload(const cluster::HeartbeatPayload& hb) const override {
    return hb.all_metaload;
  }

  bool when(const cluster::ClusterView& view) override;
  std::vector<double> where(const cluster::ClusterView& view) override;
  std::vector<std::string> howmuch() const override {
    return {"big_first", "small_first", "big_small"};
  }

  // Controller introspection (tests / telemetry).
  double smoothed_share() const { return smoothed_share_; }
  double integral() const { return integral_; }
  double last_output() const { return last_output_; }

 private:
  Options opt_{};
  double smoothed_share_ = -1.0;  // <0: not yet initialized
  double integral_ = 0.0;
  double last_output_ = 0.0;
};

}  // namespace mantle::balancers
