#include "balancers/builtin.hpp"

#include <algorithm>
#include <cmath>

namespace mantle::balancers {

using mantle::mds::kNoRank;
using mantle::mds::MdsRank;

namespace {
constexpr double kIdle = 0.01;  // the ".01" idleness threshold of the listings

/// Views built by tests, the policy validator, or a shrunken cluster can
/// carry a whoami outside [0, size()) — indexing view.loads[whoami] would
/// then be UB. Every policy treats such a view as "nothing to do".
bool self_in_view(const cluster::ClusterView& view) {
  return view.whoami >= 0 &&
         static_cast<std::size_t>(view.whoami) < view.size();
}

}  // namespace

// ---------------------------------------------------------------------------
// OriginalBalancer (Table 1)
// ---------------------------------------------------------------------------

double OriginalBalancer::metaload(const PopSnapshot& p) const {
  return p.ird + 2.0 * p.iwr + p.readdir + 2.0 * p.fetch + 4.0 * p.store;
}

double OriginalBalancer::mdsload(const HeartbeatPayload& hb) const {
  return 0.8 * hb.auth_metaload + 0.2 * hb.all_metaload + hb.req_rate +
         10.0 * hb.queue_len;
}

bool OriginalBalancer::when(const ClusterView& view) {
  if (!self_in_view(view)) return false;  // degenerate view: nothing to do
  const double avg = view.total_load / static_cast<double>(view.size());
  return view.loads[static_cast<std::size_t>(view.whoami)] > avg;
}

std::vector<double> OriginalBalancer::where(const ClusterView& view) {
  // Partition the cluster into exporters and importers around the mean and
  // hand my excess to importers in proportion to their deficit.
  std::vector<double> targets(view.size(), 0.0);
  if (!self_in_view(view)) return targets;
  const double avg = view.total_load / static_cast<double>(view.size());
  const double my = view.loads[static_cast<std::size_t>(view.whoami)];
  const double excess = my - avg;
  // NaN-safe: a corrupted mean must fail toward "export nothing".
  if (!(excess > 0.0) || !std::isfinite(excess)) return targets;
  double total_deficit = 0.0;
  for (std::size_t i = 0; i < view.size(); ++i) {
    if (static_cast<MdsRank>(i) == view.whoami) continue;
    total_deficit += std::max(0.0, avg - view.loads[i]);
  }
  if (total_deficit <= 0.0) return targets;
  for (std::size_t i = 0; i < view.size(); ++i) {
    if (static_cast<MdsRank>(i) == view.whoami) continue;
    const double deficit = std::max(0.0, avg - view.loads[i]);
    targets[i] = excess * (deficit / total_deficit);
  }
  return targets;
}

// ---------------------------------------------------------------------------
// GreedySpillBalancer (Listing 1)
// ---------------------------------------------------------------------------

bool GreedySpillBalancer::when(const ClusterView& view) {
  if (!self_in_view(view)) return false;
  const auto me = static_cast<std::size_t>(view.whoami);
  const std::size_t next = me + 1;
  if (next >= view.size()) return false;  // MDSs[whoami+1] undefined
  return view.loads[me] > kIdle && view.loads[next] < kIdle;
}

std::vector<double> GreedySpillBalancer::where(const ClusterView& view) {
  std::vector<double> targets(view.size(), 0.0);
  if (!self_in_view(view)) return targets;
  const auto me = static_cast<std::size_t>(view.whoami);
  if (me + 1 < view.size())
    targets[me + 1] = view.mdss[me].all_metaload / 2.0;
  return targets;
}

// ---------------------------------------------------------------------------
// GreedySpillEvenBalancer (Listing 2)
// ---------------------------------------------------------------------------

MdsRank GreedySpillEvenBalancer::bisect_target(int whoami0, int n) {
  const int whoami1 = whoami0 + 1;  // the listing is 1-based
  const double t = (static_cast<double>(n - whoami1 + 1) / 2.0) +
                   static_cast<double>(whoami1);
  if (t != std::floor(t)) return kNoRank;  // undefined MDS index
  int t1 = static_cast<int>(t);
  if (t1 > n) t1 = whoami1;
  return t1 - 1;  // back to 0-based
}

bool GreedySpillEvenBalancer::when(const ClusterView& view) {
  if (!self_in_view(view)) return false;
  const auto me = static_cast<std::size_t>(view.whoami);
  MdsRank t = bisect_target(view.whoami, static_cast<int>(view.size()));
  if (t == kNoRank) return false;
  // Walk back toward whoami past nodes that already carry load, searching
  // for an underutilized MDS in my half (see the header note about the
  // listing's printed loop condition).
  while (t != view.whoami && view.loads[static_cast<std::size_t>(t)] >= kIdle)
    --t;
  target_ = t;
  return view.loads[me] > kIdle &&
         view.loads[static_cast<std::size_t>(t)] < kIdle && t != view.whoami;
}

std::vector<double> GreedySpillEvenBalancer::where(const ClusterView& view) {
  std::vector<double> targets(view.size(), 0.0);
  if (!self_in_view(view)) return targets;
  if (target_ != kNoRank && target_ != view.whoami &&
      static_cast<std::size_t>(target_) < view.size())
    targets[static_cast<std::size_t>(target_)] =
        view.loads[static_cast<std::size_t>(view.whoami)] / 2.0;
  return targets;
}

// ---------------------------------------------------------------------------
// FillSpillBalancer (Listing 3)
// ---------------------------------------------------------------------------

bool FillSpillBalancer::when(const ClusterView& view) {
  if (!self_in_view(view)) return false;
  const auto me = static_cast<std::size_t>(view.whoami);
  go_ = false;
  if (view.mdss[me].cpu_pct > opt_.cpu_threshold) {
    if (wait_ > 0) {
      --wait_;  // overloaded, but hold for consecutive confirmations
    } else {
      wait_ = opt_.hold_iterations;
      go_ = true;
    }
  } else {
    wait_ = opt_.hold_iterations;
  }
  if (me + 1 >= view.size()) go_ = false;  // nowhere to spill
  return go_;
}

std::vector<double> FillSpillBalancer::where(const ClusterView& view) {
  std::vector<double> targets(view.size(), 0.0);
  if (!self_in_view(view)) return targets;
  const auto me = static_cast<std::size_t>(view.whoami);
  if (me + 1 < view.size())
    targets[me + 1] = view.loads[me] * opt_.spill_fraction;
  return targets;
}

// ---------------------------------------------------------------------------
// AdaptableBalancer (Listing 4)
// ---------------------------------------------------------------------------

bool AdaptableBalancer::when(const ClusterView& view) {
  if (!self_in_view(view)) return false;
  const double my = view.loads[static_cast<std::size_t>(view.whoami)];
  double max_load = 0.0;
  for (const double l : view.loads) max_load = std::max(max_load, l);
  switch (opt_.mode) {
    case Mode::kConservative:
      // A minimum-offload gate keeps metadata on one MDS until a load
      // spike makes distribution unavoidable (Figure 10, top).
      return my > view.total_load / 2.0 && my >= max_load &&
             my > opt_.min_offload;
    case Mode::kAggressive:
      // Listing 4: only the single majority holder migrates.
      return my > view.total_load / 2.0 && my >= max_load;
    case Mode::kTooAggressive:
      // Chases perfect balance: anyone above the mean exports every tick
      // (Figure 10, bottom: thrash, forwards, high variance).
      return my > view.total_load / static_cast<double>(view.size());
  }
  return false;
}

std::vector<double> AdaptableBalancer::where(const ClusterView& view) {
  std::vector<double> targets(view.size(), 0.0);
  if (!self_in_view(view)) return targets;
  const double target_load =
      view.total_load / static_cast<double>(view.size());
  // A non-finite mean (total_load overflowed, e.g. many near-DBL_MAX
  // loads summed) would turn every deficit into an infinite export goal.
  if (!std::isfinite(target_load)) return targets;
  for (std::size_t i = 0; i < view.size(); ++i) {
    if (static_cast<MdsRank>(i) == view.whoami) continue;
    if (view.loads[i] < target_load) targets[i] = target_load - view.loads[i];
  }
  return targets;
}

// ---------------------------------------------------------------------------
// HashBalancer
// ---------------------------------------------------------------------------

double HashBalancer::metaload(const PopSnapshot& p) const {
  return p.ird + p.iwr + p.readdir;
}

bool HashBalancer::when(const ClusterView& view) {
  // Hash placement ignores load entirely: whoever holds more than an even
  // share (entry-wise proxied by auth load) keeps pushing outwards.
  if (!self_in_view(view)) return false;
  const double avg = view.total_load / static_cast<double>(view.size());
  return view.loads[static_cast<std::size_t>(view.whoami)] > avg * 1.05;
}

std::vector<double> HashBalancer::where(const ClusterView& view) {
  std::vector<double> targets(view.size(), 0.0);
  if (!self_in_view(view)) return targets;
  const double avg = view.total_load / static_cast<double>(view.size());
  if (!std::isfinite(avg)) return targets;  // overflowed/corrupted total
  for (std::size_t i = 0; i < view.size(); ++i) {
    if (static_cast<MdsRank>(i) == view.whoami) continue;
    if (view.loads[i] < avg) targets[i] = avg - view.loads[i];
  }
  return targets;
}

}  // namespace mantle::balancers
