#include "safety/shadow.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "obs/metrics.hpp"

namespace mantle::safety {

using cluster::ClusterView;
using cluster::HeartbeatPayload;
using core::MantlePolicy;

namespace {

std::string u64(std::uint64_t x) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, x);
  return buf;
}

std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out + "\"";
}

bool is_budget_error(const std::string& err) {
  return err.find("instruction budget exceeded") != std::string::npos;
}

/// A subtree stand-in moved around by shadow exports. Re-exports prefer
/// the chunk most recently imported from the destination *when the
/// export returns a comparable amount of load* — that is what the
/// dirfrag selectors would do (giving back most of what just arrived
/// means shipping the same big subtree; trimming a sliver ships some
/// other small dirfrag). A policy that bounces load back and forth
/// therefore bounces the *same* chunk, exactly the pattern the
/// ping-pong detector fires on, while policies that merely shave small
/// counter-flows do not.
struct Chunk {
  std::string id;
  int owner = -1;
  int imported_from = -1;
  double load = 0.0;      // what the last export of this chunk carried
  std::uint64_t seq = 0;  // last-moved stamp, for "most recent" picks
};

}  // namespace

ShadowVerdict shadow_evaluate(const std::vector<obs::TraceEvent>& recorded,
                              const MantlePolicy& policy,
                              const ShadowConfig& cfg,
                              obs::MetricsRegistry* metrics,
                              obs::TraceSink* verdict_trace) {
  ShadowVerdict v;

  // --- sandboxed candidate ---
  core::MantleBalancer::Options opt;
  opt.budget = cfg.budget;
  opt.lua_seed = cfg.lua_seed;
  core::MantleBalancer probe(policy, opt);

  // --- cluster extent from the recording ---
  int max_rank = -1;
  for (const obs::TraceEvent& ev : recorded)
    max_rank = std::max({max_rank, ev.rank, ev.peer});
  const int nranks = max_rank + 1;
  v.num_ranks = nranks;

  // Shadow load model: per-rank load evolves from recorded workload
  // *growth* (positive heartbeat-to-heartbeat deltas — arrivals hitting
  // that rank) plus the candidate's own exports. Recorded load *drops*
  // are ignored: they are the recorded balancer's migrations, and
  // replaying them under a candidate that also migrates would count the
  // rebalancing twice and oscillate no matter what the candidate does.
  const auto n = static_cast<std::size_t>(std::max(nranks, 0));
  std::vector<double> shadow_load(n, 0.0);
  std::vector<double> last_rec(n, 0.0);  // last recorded load per rank
  std::vector<bool> seen(n, false);
  std::vector<double> rec_cpu(n, 0.0);

  std::vector<Chunk> chunks;
  std::uint64_t chunk_counter = 0;
  std::uint64_t move_seq = 0;

  obs::TraceSink shadow_trace;  // the synthetic decision timeline
  std::uint64_t prev_errors = 0;

  // One hook batch accounted: bumps call/error/budget tallies.
  const auto account = [&](std::uint64_t calls) {
    v.hook_calls += calls;
    const std::uint64_t now_errors = probe.hook_errors();
    if (now_errors > prev_errors) {
      v.hook_errors += now_errors - prev_errors;
      if (is_budget_error(probe.last_error())) ++v.budget_exhaustions;
      prev_errors = now_errors;
    }
  };

  Time t_last = 0;
  for (const obs::TraceEvent& ev : recorded) {
    t_last = std::max(t_last, ev.at);
    if (ev.kind == obs::EventKind::HeartbeatSent && ev.rank >= 0 &&
        static_cast<std::size_t>(ev.rank) < n) {
      const auto r = static_cast<std::size_t>(ev.rank);
      for (const auto& [k, val] : ev.fields) {
        if (k == "load" && std::isfinite(val)) {
          const double load = std::max(0.0, val);
          shadow_load[r] +=
              seen[r] ? std::max(0.0, load - last_rec[r]) : load;
          last_rec[r] = load;
          seen[r] = true;
        }
        if (k == "cpu" && std::isfinite(val)) rec_cpu[r] = val;
      }
      continue;
    }
    if (ev.kind != obs::EventKind::WhenDecision) continue;
    if (ev.rank < 0 || static_cast<std::size_t>(ev.rank) >= n) continue;

    // --- one replayed balancer tick ---
    ++v.ticks_replayed;
    const auto me = static_cast<std::size_t>(ev.rank);

    ClusterView view;
    view.whoami = ev.rank;
    view.now = ev.at;
    view.mdss.resize(n);
    view.loads.resize(n);
    view.total_load = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      HeartbeatPayload& hb = view.mdss[i];
      hb.rank = static_cast<int>(i);
      const double load = shadow_load[i];
      hb.all_metaload = load;
      hb.auth_metaload = load;
      hb.cpu_pct = rec_cpu[i];
      hb.sent_at = ev.at;
      view.loads[i] = probe.mdsload(hb);
      view.total_load += view.loads[i];
    }
    account(n);

    const obs::SpanId tick_span = shadow_trace.next_span();
    const bool go = probe.when(view);
    account(1);
    shadow_trace.event(ev.at, obs::EventKind::WhenDecision, ev.rank, -1, {},
                       {{"go", go ? 1.0 : 0.0},
                        {"my_load", view.loads[me]},
                        {"total_load", view.total_load}},
                       tick_span);
    if (!go) continue;

    std::vector<double> targets = probe.where(view);
    account(1);
    targets.resize(n, 0.0);
    double surviving = 0.0;
    double shipped = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      if (t == me || targets[t] <= 0.0) continue;
      surviving += 1.0;
      shipped += targets[t];
    }
    {
      obs::TraceEvent we;
      we.at = ev.at;
      we.kind = obs::EventKind::WhereDecision;
      we.rank = ev.rank;
      we.span = tick_span;
      we.fields.emplace_back("targets_total", surviving);
      we.fields.emplace_back("shipped_total", shipped);
      shadow_trace.record(std::move(we));
    }
    probe.howmuch();
    account(1);

    // --- shadow exports: move chunks, displace load ---
    for (std::size_t t = 0; t < n; ++t) {
      if (t == me || targets[t] <= 0.0) continue;
      // The mechanism cannot ship more load than the exporter holds.
      const double goal = std::min(targets[t] * cfg.need_min_factor,
                                   shadow_load[me]);
      if (goal <= cfg.min_export_load) continue;
      // Pick the chunk to ship: the one most recently imported from the
      // destination, if this export gives back at least half of what
      // that chunk carried; else a fresh one.
      Chunk* pick = nullptr;
      for (Chunk& c : chunks)
        if (c.owner == static_cast<int>(me) &&
            c.imported_from == static_cast<int>(t) &&
            goal >= 0.5 * c.load && (pick == nullptr || c.seq > pick->seq))
          pick = &c;
      if (pick == nullptr) {
        chunks.push_back(Chunk{"shadow:c" + u64(++chunk_counter),
                               static_cast<int>(me), -1, 0.0, 0});
        pick = &chunks.back();
      }
      pick->owner = static_cast<int>(t);
      pick->imported_from = static_cast<int>(me);
      pick->load = goal;
      pick->seq = ++move_seq;
      shadow_load[me] = std::max(0.0, shadow_load[me] - goal);
      shadow_load[t] += goal;
      ++v.exports;
      const obs::SpanId mig = shadow_trace.next_span();
      shadow_trace.event(ev.at, obs::EventKind::ExportStart, ev.rank,
                         static_cast<int>(t), pick->id, {{"load", goal}}, mig,
                         tick_span);
      shadow_trace.event(ev.at, obs::EventKind::ExportCommit, ev.rank,
                         static_cast<int>(t), pick->id, {{"entries", 0.0}},
                         mig, tick_span);
    }
  }

  // --- verdict ---
  v.report = obs::analyze(shadow_trace.snapshot(), cfg.analyze);
  if (v.ticks_replayed == 0) {
    v.accepted = false;
    v.reason = "recorded trace contains no balancer ticks to replay";
  } else if (v.budget_exhaustions > cfg.max_budget_exhaustions) {
    v.accepted = false;
    v.reason = "hook instruction budget exhausted " +
               u64(v.budget_exhaustions) + " time(s) during replay";
  } else if (v.report.tripped() > 0) {
    std::string which;
    for (const char* d : {"dead-letter-leak", "ping-pong", "stuck-export",
                          "thrash"})
      if (v.report.count(d) > 0) which += std::string(which.empty() ? "" : ", ") + d;
    v.accepted = false;
    v.reason = "anomaly detector(s) tripped on the shadow timeline: " + which;
  } else if (v.hook_calls > 0 &&
             static_cast<double>(v.hook_errors) >
                 cfg.max_hook_error_rate *
                     static_cast<double>(v.hook_calls)) {
    v.accepted = false;
    v.reason = "hook error rate " + u64(v.hook_errors) + "/" +
               u64(v.hook_calls) + " exceeds the acceptance threshold";
  } else {
    v.accepted = true;
  }

  if (metrics != nullptr) {
    metrics
        ->counter("mantle_shadow_evaluations_total",
                  "candidate policies shadow-evaluated")
        .inc();
    if (!v.accepted)
      metrics
          ->counter("mantle_shadow_rejections_total",
                    "candidate policies rejected by shadow evaluation")
          .inc();
  }
  if (verdict_trace != nullptr)
    verdict_trace->event(
        t_last, obs::EventKind::ShadowVerdict, -1, -1,
        v.accepted ? "accepted" : "rejected",
        {{"accepted", v.accepted ? 1.0 : 0.0},
         {"ticks", static_cast<double>(v.ticks_replayed)},
         {"exports", static_cast<double>(v.exports)},
         {"hook_errors", static_cast<double>(v.hook_errors)},
         {"budget_exhaustions", static_cast<double>(v.budget_exhaustions)},
         {"tripped", static_cast<double>(v.report.tripped())}});
  return v;
}

std::string gate_injection(const std::vector<obs::TraceEvent>& recorded,
                           const MantlePolicy& policy, const ShadowConfig& cfg,
                           obs::MetricsRegistry* metrics,
                           obs::TraceSink* verdict_trace) {
  // Stage 1: syntax + budgeted dry run against the synthetic view.
  const std::string err = core::validate_policy(policy, cfg.budget);
  if (!err.empty()) return "validation failed: " + err;
  // Stage 2: replay against the recorded production trace.
  const ShadowVerdict v =
      shadow_evaluate(recorded, policy, cfg, metrics, verdict_trace);
  if (!v.accepted) return "shadow evaluation rejected the policy: " + v.reason;
  return "";
}

std::string ShadowVerdict::to_json() const {
  std::string out = "{\"accepted\":";
  out += accepted ? "true" : "false";
  out += ",\"reason\":" + json_str(reason);
  out += ",\"summary\":{";
  out += "\"budget_exhaustions\":" + u64(budget_exhaustions);
  out += ",\"exports\":" + u64(exports);
  out += ",\"hook_calls\":" + u64(hook_calls);
  out += ",\"hook_errors\":" + u64(hook_errors);
  out += ",\"num_ranks\":" + std::to_string(num_ranks);
  out += ",\"ticks_replayed\":" + u64(ticks_replayed);
  out += "},\"report\":" + report.to_json() + "}";
  return out;
}

std::string ShadowVerdict::to_table() const {
  char buf[160];
  std::string out;
  std::snprintf(buf, sizeof(buf), "  verdict       %s\n",
                accepted ? "ACCEPTED" : "REJECTED");
  out += buf;
  if (!reason.empty()) out += "  reason        " + reason + "\n";
  std::snprintf(buf, sizeof(buf),
                "  replay        %" PRIu64 " tick(s), %d rank(s), %" PRIu64
                " shadow export(s)\n",
                ticks_replayed, num_ranks, exports);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  hooks         %" PRIu64 " call(s), %" PRIu64
                " error(s), %" PRIu64 " budget exhaustion(s)\n",
                hook_calls, hook_errors, budget_exhaustions);
  out += buf;
  out += report.to_table();
  return out;
}

std::string load_policy(const std::string& name_or_path, MantlePolicy& out) {
  if (name_or_path == "original") {
    out = core::scripts::original();
    return "";
  }
  if (name_or_path == "greedy" || name_or_path == "greedy_spill") {
    out = core::scripts::greedy_spill();
    return "";
  }
  if (name_or_path == "greedy_even" || name_or_path == "greedy_spill_even") {
    out = core::scripts::greedy_spill_even();
    return "";
  }
  if (name_or_path == "fill_spill" || name_or_path == "fill_and_spill") {
    out = core::scripts::fill_and_spill();
    return "";
  }
  if (name_or_path == "adaptable") {
    out = core::scripts::adaptable();
    return "";
  }

  std::ifstream in(name_or_path, std::ios::binary);
  if (!in) return "cannot open policy file: " + name_or_path;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  MantlePolicy p;
  std::string* cur = nullptr;
  std::size_t line_start = 0;
  bool saw_section = false;
  while (line_start <= text.size()) {
    const std::size_t nl = text.find('\n', line_start);
    const std::string line =
        text.substr(line_start, nl == std::string::npos
                                    ? std::string::npos
                                    : nl - line_start);
    std::string trimmed = line;
    while (!trimmed.empty() &&
           (trimmed.back() == ' ' || trimmed.back() == '\t' ||
            trimmed.back() == '\r'))
      trimmed.pop_back();
    std::size_t b = 0;
    while (b < trimmed.size() && (trimmed[b] == ' ' || trimmed[b] == '\t'))
      ++b;
    trimmed = trimmed.substr(b);
    if (!trimmed.empty() && trimmed.front() == '[' && trimmed.back() == ']') {
      const std::string name = trimmed.substr(1, trimmed.size() - 2);
      if (name == "metaload") cur = &p.metaload;
      else if (name == "mdsload") cur = &p.mdsload;
      else if (name == "when") cur = &p.when;
      else if (name == "where") cur = &p.where;
      else if (name == "howmuch") cur = &p.howmuch;
      else return "unknown policy section [" + name + "] in " + name_or_path;
      saw_section = true;
    } else if (cur != nullptr) {
      // The empty pseudo-line after a final '\n' is not content.
      if (nl != std::string::npos || !line.empty()) {
        *cur += line;
        *cur += '\n';
      }
    } else if (!trimmed.empty() && trimmed.rfind("--", 0) != 0) {
      return "policy file must start with a [hook] section: " + name_or_path;
    }
    if (nl == std::string::npos) break;
    line_start = nl + 1;
  }
  if (!saw_section)
    return "no [metaload]/[mdsload]/[when]/[where]/[howmuch] sections in " +
           name_or_path;
  out = std::move(p);
  return "";
}

}  // namespace mantle::safety
