#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/mantle.hpp"
#include "obs/provenance.hpp"

/// \file whatif.hpp
/// What-if replay: run a *candidate* policy over the exact hook inputs a
/// recorded run saw (the decision provenance dump) and diff its verdicts
/// against what the recorded policy actually decided, decision by
/// decision. Where shadow evaluation (shadow.hpp) answers "is this
/// policy safe to inject", what-if answers "what would it have done
/// differently": same when/where/howmuch hooks, but fed the recorded
/// per-rank heartbeat tables instead of a synthetic load model, so the
/// comparison is exact — a candidate identical to the recorded policy
/// produces zero diffs.
///
/// The candidate runs in the same sandbox as shadow evaluation (a
/// budgeted MantleBalancer per recorded rank, so policies with per-rank
/// state — e.g. Fill & Spill's consecutive-overload counter — evolve it
/// in recorded decision order). Records whose per-rank input tables were
/// truncated at capture time (ClusterConfig::provenance_max_ranks) are
/// counted and skipped: their inputs cannot be reconstructed.
///
/// Determinism contract: pure function of (records, policy, budget);
/// to_json() serializes with name-ordered keys and
/// format_metric_value() numbers.

namespace mantle::safety {

/// One decision where the candidate disagreed with the recorded run.
struct WhatifDiff {
  Time at = 0;
  int rank = -1;
  std::string digest;    ///< input digest of the decision
  std::string field;     ///< "go" | "targets" | "selectors"
  std::string recorded;  ///< rendered recorded value
  std::string replayed;  ///< rendered candidate value
};

struct WhatifResult {
  std::uint64_t decisions = 0;          ///< records in the dump
  std::uint64_t replayed = 0;           ///< decisions re-run
  std::uint64_t skipped_truncated = 0;  ///< inputs elided at capture time
  std::uint64_t go_flips = 0;           ///< when() verdict changed
  std::uint64_t target_diffs = 0;       ///< where() output changed
  std::uint64_t selector_diffs = 0;     ///< howmuch() chain changed
  std::uint64_t hook_errors = 0;        ///< candidate hook errors during replay
  std::vector<WhatifDiff> diffs;        ///< in recorded decision order

  std::uint64_t diff_count() const {
    return go_flips + target_diffs + selector_diffs;
  }

  /// Deterministic JSON: {"summary":{...},"diffs":[...]}.
  std::string to_json() const;
  /// Human-readable diff listing for terminals.
  std::string to_table() const;
};

/// Replay `records` through `policy`. `budget` bounds the interpreter
/// steps per hook call, as in a live MantleBalancer.
WhatifResult whatif_replay(const std::vector<obs::DecisionRecord>& records,
                           const core::MantlePolicy& policy,
                           std::uint64_t budget = 1 << 20);

}  // namespace mantle::safety
