#include "safety/whatif.hpp"

#include <cinttypes>
#include <cstdio>
#include <map>
#include <memory>

#include "obs/metrics.hpp"

namespace mantle::safety {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string render_go(bool go) { return go ? "go" : "hold"; }

std::string render_doubles(const std::vector<double>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += obs::format_metric_value(v[i]);
  }
  return out;
}

std::string render_strings(const std::vector<std::string>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += v[i];
  }
  return out;
}

}  // namespace

WhatifResult whatif_replay(const std::vector<obs::DecisionRecord>& records,
                           const core::MantlePolicy& policy,
                           std::uint64_t budget) {
  WhatifResult res;
  // One sandboxed candidate per recorded rank, created on first use and
  // kept across decisions so per-rank policy state (WRstate/RDstate,
  // Fill & Spill counters) evolves in recorded order, as it would live.
  std::map<int, std::unique_ptr<core::MantleBalancer>> sandboxes;
  const auto sandbox = [&](int rank) -> core::MantleBalancer& {
    auto it = sandboxes.find(rank);
    if (it == sandboxes.end()) {
      core::MantleBalancer::Options opt;
      opt.budget = budget;
      it = sandboxes
               .emplace(rank, std::make_unique<core::MantleBalancer>(policy,
                                                                     opt))
               .first;
    }
    return *it->second;
  };

  for (const obs::DecisionRecord& rec : records) {
    ++res.decisions;
    if (rec.truncated) {
      ++res.skipped_truncated;
      continue;
    }
    ++res.replayed;
    core::MantleBalancer& cand = sandbox(rec.rank);

    // Rebuild the exact view the recorded balancer saw: recorded
    // heartbeat rows and aliveness, loads re-derived through the
    // *candidate's* mdsload (that is part of what a new policy changes).
    cluster::ClusterView view;
    view.whoami = rec.rank;
    view.now = rec.at;
    view.mdss.resize(rec.mdss.size());
    for (std::size_t i = 0; i < rec.mdss.size(); ++i) {
      cluster::HeartbeatPayload& hb = view.mdss[i];
      hb.rank = static_cast<cluster::MdsRank>(i);
      hb.auth_metaload = rec.mdss[i].auth_metaload;
      hb.all_metaload = rec.mdss[i].all_metaload;
      hb.cpu_pct = rec.mdss[i].cpu_pct;
      hb.mem_pct = rec.mdss[i].mem_pct;
      hb.queue_len = rec.mdss[i].queue_len;
      hb.req_rate = rec.mdss[i].req_rate;
      hb.sent_at = rec.at;
    }
    view.alive = rec.alive;
    view.loads.resize(view.mdss.size());
    view.total_load = 0.0;
    for (std::size_t i = 0; i < view.mdss.size(); ++i) {
      view.loads[i] = view.is_alive(i) ? cand.mdsload(view.mdss[i]) : 0.0;
      view.total_load += view.loads[i];
    }

    const bool go = view.total_load >= rec.min_load && cand.when(view);
    const auto diff = [&](const char* field, std::string recorded,
                          std::string replayed) {
      WhatifDiff d;
      d.at = rec.at;
      d.rank = rec.rank;
      d.digest = rec.digest;
      d.field = field;
      d.recorded = std::move(recorded);
      d.replayed = std::move(replayed);
      res.diffs.push_back(std::move(d));
    };
    if (go != rec.go) {
      ++res.go_flips;
      diff("go", render_go(rec.go), render_go(go));
    } else if (go) {
      std::vector<double> targets = cand.where(view);
      targets.resize(view.mdss.size(), 0.0);
      if (targets != rec.targets) {
        ++res.target_diffs;
        diff("targets", render_doubles(rec.targets), render_doubles(targets));
      }
      const std::vector<std::string> selectors = cand.howmuch();
      if (selectors != rec.selectors) {
        ++res.selector_diffs;
        diff("selectors", render_strings(rec.selectors),
             render_strings(selectors));
      }
    }
  }
  for (const auto& [rank, cand] : sandboxes)
    res.hook_errors += cand->hook_errors();
  return res;
}

std::string WhatifResult::to_json() const {
  std::string out = "{\"summary\":{";
  const auto u = [&out](const char* k, std::uint64_t v, bool comma = true) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64 "%s", k, v,
                  comma ? "," : "");
    out += buf;
  };
  u("decisions", decisions);
  u("diff_count", diff_count());
  u("go_flips", go_flips);
  u("hook_errors", hook_errors);
  u("replayed", replayed);
  u("selector_diffs", selector_diffs);
  u("skipped_truncated", skipped_truncated);
  u("target_diffs", target_diffs, false);
  out += "},\"diffs\":[";
  for (std::size_t i = 0; i < diffs.size(); ++i) {
    const WhatifDiff& d = diffs[i];
    if (i != 0) out.push_back(',');
    char buf[64];
    std::snprintf(buf, sizeof(buf), "{\"at_us\":%" PRId64 ",",
                  static_cast<std::int64_t>(d.at));
    out += buf;
    out += "\"digest\":\"" + escape(d.digest) + "\",";
    out += "\"field\":\"" + escape(d.field) + "\",";
    std::snprintf(buf, sizeof(buf), "\"rank\":%d,", d.rank);
    out += buf;
    out += "\"recorded\":\"" + escape(d.recorded) + "\",";
    out += "\"replayed\":\"" + escape(d.replayed) + "\"}";
  }
  out += "]}";
  return out;
}

std::string WhatifResult::to_table() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "what-if replay: %" PRIu64 " decision(s), %" PRIu64
                " replayed, %" PRIu64 " skipped (truncated inputs)\n",
                decisions, replayed, skipped_truncated);
  out += buf;
  for (const WhatifDiff& d : diffs) {
    std::snprintf(buf, sizeof(buf), "  [t=%.3fs] rank %d %s:",
                  to_seconds(d.at), d.rank, d.field.c_str());
    out += buf;
    out += " recorded=" + d.recorded + " replayed=" + d.replayed;
    if (!d.digest.empty()) out += " (digest " + d.digest + ")";
    out.push_back('\n');
  }
  std::snprintf(buf, sizeof(buf),
                "  diffs: %" PRIu64 " (go %" PRIu64 ", targets %" PRIu64
                ", selectors %" PRIu64 "); candidate hook errors %" PRIu64
                "\n",
                diff_count(), go_flips, target_diffs, selector_diffs,
                hook_errors);
  out += buf;
  return out;
}

}  // namespace mantle::safety
