#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// \file fuzz.hpp
/// Deterministic hook-input fuzzer: throws hostile balancer inputs at the
/// paper's policies — both the Lua scripts running through MantleBalancer
/// and their native C++ twins — plus the luam stdlib surface those hooks
/// lean on, and checks the safety invariants the rest of the system
/// relies on:
///
///   - no C++ exception ever escapes a hook evaluation or a luam run();
///   - sanitized outputs: Mantle loads/targets come back finite and
///     non-negative no matter what garbage (NaN/Inf/negative/huge loads,
///     empty or oversized views, out-of-range whoami) went in;
///   - budget-starved runs still terminate and report a budget error;
///   - determinism: the same inputs through two fresh instances produce
///     byte-identical decisions and error messages.
///
/// Three levels, round-robined per iteration:
///   view   — hostile ClusterView/HeartbeatPayload through Balancer::when/
///            where/mdsload (Lua policies get non-finite values; native
///            twins get extreme-but-finite ones, since heartbeats in the
///            simulator are finite by construction);
///   env    — hostile Lua environments (dropped rank rows, fractional and
///            string keys, cyclic tables, rows that are not tables,
///            poisoned `targets`/`whoami`/`total`) against the raw hook
///            sources in a bare interpreter;
///   stdlib — hostile arguments to the library functions policies call
///            (string.format/sub/rep, math.fmod, table.insert/remove,
///            select/unpack/tonumber).
///
/// Everything is driven by one mantle::Rng: the same seed reproduces the
/// same cases, the same failures and byte-identical reproducer corpora.
/// Failing cases are shrunk to minimal reproducers before being reported.

namespace mantle::obs {
class MetricsRegistry;
class TraceSink;
}  // namespace mantle::obs

namespace mantle::safety {

struct FuzzConfig {
  std::uint64_t seed = 1;
  std::uint64_t iters = 10000;
  /// Interpreter budget for non-starved runs. Deliberately smaller than a
  /// live balancer's: fuzz cases are tiny and a tight budget doubles as a
  /// termination check.
  std::uint64_t budget = 1 << 16;
  /// Stop after this many distinct failures (each is shrunk, which costs
  /// re-executions; a broken build would otherwise take forever).
  std::size_t max_failures = 16;
};

/// One invariant violation, shrunk to a minimal reproducer.
struct FuzzFailure {
  std::uint64_t iteration = 0;
  std::string level;       ///< "view" | "env" | "stdlib"
  std::string subject;     ///< policy/balancer/script under test
  std::string invariant;   ///< which invariant broke
  std::string reproducer;  ///< canonical one-line minimal case
  std::string detail;      ///< observed value or error text
};

struct FuzzResult {
  std::uint64_t iterations = 0;  ///< cases actually executed
  std::uint64_t checks = 0;      ///< invariant evaluations performed
  std::vector<FuzzFailure> failures;

  bool ok() const { return failures.empty(); }

  /// The reproducer corpus: one canonical line per failure, in discovery
  /// order. Byte-identical across runs with the same config (the CI
  /// artifact on fuzz failures, and what the determinism test compares).
  std::string corpus() const;

  /// Deterministic JSON (name-ordered keys).
  std::string to_json() const;
};

/// Run the fuzzer. `metrics` (optional) receives
/// mantle_fuzz_{iterations,crashes}_total; `trace` (optional) gets one
/// FuzzCrash event per failure.
FuzzResult run_fuzz(const FuzzConfig& cfg = {},
                    obs::MetricsRegistry* metrics = nullptr,
                    obs::TraceSink* trace = nullptr);

}  // namespace mantle::safety
