#include "safety/fuzz.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>

#include "balancers/builtin.hpp"
#include "common/rng.hpp"
#include "core/mantle.hpp"
#include "lua/interp.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mantle::safety {

using cluster::Balancer;
using cluster::ClusterView;
using cluster::HeartbeatPayload;

namespace {

constexpr double kQNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kPosInf = std::numeric_limits<double>::infinity();

std::string u64s(std::uint64_t x) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, x);
  return buf;
}

std::string num_sig(double d) {
  if (std::isnan(d)) return "nan";
  if (std::isinf(d)) return d > 0 ? "inf" : "-inf";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return buf;
}

/// Deterministic deep rendering for decision signatures: tables print
/// their sorted contents, not their heap address (tostring() would make
/// every table-returning hook look nondeterministic).
std::string value_sig(const lua::Value& v, int depth = 0) {
  if (v.is_table()) {
    if (depth > 4) return "{...}";
    std::string out = "{";
    for (const auto& [k, val] : v.table()->num_keys)
      out += "[" + num_sig(k) + "]=" + value_sig(val, depth + 1) + ",";
    for (const auto& [k, val] : v.table()->str_keys)
      out += k + "=" + value_sig(val, depth + 1) + ",";
    return out + "}";
  }
  if (v.is_callable()) return "<function>";
  if (v.is_number()) return num_sig(v.number());
  return v.to_display_string();
}

std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out + "\"";
}

// ---------------------------------------------------------------------------
// Level 1: hostile ClusterViews through real balancers.
// ---------------------------------------------------------------------------

/// Hostile value codes for heartbeat fields. Order matters: reproducers
/// print the names below and shrinking walks codes back to kBenign.
enum ValueCode {
  kBenign = 0,
  kZero,
  kNegative,
  kHuge,
  kTiny,
  // Non-finite codes: only fed to Mantle subjects (simulator heartbeats
  // are finite by construction; the Lua boundary must survive anything).
  kNan,
  kInf,
  kNegInf,
  kNumValueCodes,
};

const char* code_name(int code) {
  switch (code) {
    case kZero: return "zero";
    case kNegative: return "neg";
    case kHuge: return "huge";
    case kTiny: return "tiny";
    case kNan: return "nan";
    case kInf: return "inf";
    case kNegInf: return "-inf";
    default: return "ok";
  }
}

double code_value(int code, std::size_t i) {
  switch (code) {
    case kZero: return 0.0;
    case kNegative: return -12.5;
    case kHuge: return 1e307;
    case kTiny: return 1e-300;
    case kNan: return kQNan;
    case kInf: return kPosInf;
    case kNegInf: return -kPosInf;
    default: return 10.0 + 7.0 * static_cast<double>(i);
  }
}

struct SubjectInfo {
  const char* name;
  bool is_mantle;  // Lua policy through MantleBalancer
};

constexpr SubjectInfo kSubjects[] = {
    {"lua:original", true},       {"lua:greedy_spill", true},
    {"lua:greedy_spill_even", true}, {"lua:fill_and_spill", true},
    {"lua:adaptable", true},      {"native:original", false},
    {"native:greedy_spill", false},  {"native:greedy_spill_even", false},
    {"native:fill_and_spill", false}, {"native:adaptable", false},
};
constexpr int kNumSubjects = 10;

std::unique_ptr<Balancer> make_subject(int idx, std::uint64_t budget) {
  core::MantleBalancer::Options opt;
  opt.budget = budget;
  switch (idx) {
    case 0: return std::make_unique<core::MantleBalancer>(core::scripts::original(), opt);
    case 1: return std::make_unique<core::MantleBalancer>(core::scripts::greedy_spill(), opt);
    case 2: return std::make_unique<core::MantleBalancer>(core::scripts::greedy_spill_even(), opt);
    case 3: return std::make_unique<core::MantleBalancer>(core::scripts::fill_and_spill(), opt);
    case 4: return std::make_unique<core::MantleBalancer>(core::scripts::adaptable(), opt);
    case 5: return std::make_unique<balancers::OriginalBalancer>();
    case 6: return std::make_unique<balancers::GreedySpillBalancer>();
    case 7: return std::make_unique<balancers::GreedySpillEvenBalancer>();
    case 8: return std::make_unique<balancers::FillSpillBalancer>();
    default: return std::make_unique<balancers::AdaptableBalancer>();
  }
}

struct ViewCase {
  int subject = 0;
  int n = 1;
  int whoami = 0;
  bool starve = false;  // 64-step budget (Mantle subjects only)
  std::vector<int> load_code;
  std::vector<int> cpu_code;
  std::vector<int> q_code;
  std::vector<std::uint8_t> alive;
};

ViewCase gen_view_case(Rng& rng) {
  ViewCase c;
  c.subject = static_cast<int>(rng.uniform(0, kNumSubjects - 1));
  const bool mantle = kSubjects[c.subject].is_mantle;
  constexpr int kNs[] = {0, 1, 2, 3, 5, 8, 32, 128};
  c.n = kNs[rng.uniform(0, 7)];
  if (!mantle && c.n == 0) c.n = 1;  // natives assume membership
  const int max_code = mantle ? kNumValueCodes - 1 : kNan - 1;
  for (int i = 0; i < c.n; ++i) {
    const bool hostile = rng.uniform(0, 2) == 0;
    c.load_code.push_back(
        hostile ? static_cast<int>(rng.uniform(1, max_code)) : kBenign);
    c.cpu_code.push_back(rng.uniform(0, 5) == 0
                             ? static_cast<int>(rng.uniform(1, max_code))
                             : kBenign);
    c.q_code.push_back(rng.uniform(0, 5) == 0
                           ? static_cast<int>(rng.uniform(1, max_code))
                           : kBenign);
    c.alive.push_back(rng.uniform(0, 7) == 0 ? 0 : 1);
  }
  if (c.n == 0) {
    c.whoami = 0;
  } else if (mantle && rng.uniform(0, 7) == 0) {
    constexpr int kBad[] = {-1, -7, 0, 0, 0};
    const int pick = static_cast<int>(rng.uniform(0, 4));
    c.whoami = pick < 2 ? kBad[pick] : c.n + static_cast<int>(rng.uniform(0, 3));
  } else {
    c.whoami = static_cast<int>(rng.uniform(0, static_cast<std::uint64_t>(c.n - 1)));
  }
  c.starve = mantle && rng.uniform(0, 7) == 0;
  return c;
}

struct CaseFailure {
  std::string invariant;
  std::string detail;
};

/// Run the case once through a fresh subject; returns the decision
/// signature via `sig` and the first invariant violation (or empty).
CaseFailure run_view_once(const ViewCase& c, std::uint64_t budget,
                          std::string* sig, std::uint64_t* checks) {
  const bool mantle = kSubjects[c.subject].is_mantle;
  std::unique_ptr<Balancer> b =
      make_subject(c.subject, c.starve ? 64 : budget);
  try {
    ClusterView view;
    view.whoami = c.whoami;
    view.now = 1000000;
    view.mdss.resize(static_cast<std::size_t>(c.n));
    view.loads.resize(static_cast<std::size_t>(c.n));
    for (std::size_t i = 0; i < view.mdss.size(); ++i) {
      HeartbeatPayload& hb = view.mdss[i];
      hb.rank = static_cast<int>(i);
      hb.all_metaload = code_value(c.load_code[i], i);
      hb.auth_metaload = 0.8 * hb.all_metaload;
      hb.cpu_pct = code_value(c.cpu_code[i], i);
      hb.queue_len = code_value(c.q_code[i], i);
      hb.req_rate = 3.0;
      hb.sent_at = view.now;
      view.loads[i] = b->mdsload(hb);
      ++*checks;
      if (!std::isfinite(view.loads[i]))
        return {"mdsload-finite",
                "rank " + std::to_string(i) + " load " + num_sig(view.loads[i])};
      if (mantle && view.loads[i] < 0.0)
        return {"mdsload-nonnegative",
                "rank " + std::to_string(i) + " load " + num_sig(view.loads[i])};
      view.total_load += view.loads[i];
    }
    view.alive.assign(c.alive.begin(), c.alive.end());

    const bool go = b->when(view);
    std::vector<double> targets = b->where(view);
    *sig = go ? "go" : "stay";
    for (const double t : targets) {
      ++*checks;
      *sig += "," + num_sig(t);
      if (!std::isfinite(t))
        return {"targets-finite", "target " + num_sig(t)};
      if (mantle && t < 0.0)
        return {"targets-nonnegative", "target " + num_sig(t)};
    }
    if (mantle) {
      ++*checks;
      const auto* mb = static_cast<core::MantleBalancer*>(b.get());
      *sig += ";errs=" + u64s(mb->hook_errors());
      if (mb->hook_errors() > 0 && mb->last_error().empty())
        return {"error-reported", "hook_errors without last_error"};
    }
  } catch (const std::exception& e) {
    return {"no-exception-escape", e.what()};
  } catch (...) {
    return {"no-exception-escape", "non-standard exception"};
  }
  return {};
}

CaseFailure run_view_case(const ViewCase& c, std::uint64_t budget,
                          std::uint64_t* checks) {
  std::string sig_a, sig_b;
  CaseFailure f = run_view_once(c, budget, &sig_a, checks);
  if (!f.invariant.empty()) return f;
  f = run_view_once(c, budget, &sig_b, checks);
  if (!f.invariant.empty()) return f;
  ++*checks;
  if (sig_a != sig_b)
    return {"determinism", "run1 {" + sig_a + "} run2 {" + sig_b + "}"};
  return {};
}

std::string codes_text(const std::vector<int>& codes) {
  std::string out = "[";
  for (std::size_t i = 0; i < codes.size(); ++i)
    out += std::string(i ? "," : "") + code_name(codes[i]);
  return out + "]";
}

std::string view_repro(const ViewCase& c, const CaseFailure& f) {
  std::string out = "view subject=";
  out += kSubjects[c.subject].name;
  out += " n=" + std::to_string(c.n);
  out += " whoami=" + std::to_string(c.whoami);
  out += " loads=" + codes_text(c.load_code);
  out += " cpu=" + codes_text(c.cpu_code);
  out += " q=" + codes_text(c.q_code);
  out += " alive=[";
  for (std::size_t i = 0; i < c.alive.size(); ++i)
    out += std::string(i ? "," : "") + (c.alive[i] ? "1" : "0");
  out += "]";
  if (c.starve) out += " starve=1";
  out += " :: " + f.invariant;
  return out;
}

/// Shrink: walk every hostile knob back to benign, keep reductions that
/// still fail (on the *same* invariant, so we don't chase a moving bug).
ViewCase shrink_view(ViewCase c, const std::string& invariant,
                     std::uint64_t budget, std::uint64_t* checks) {
  const auto still_fails = [&](const ViewCase& cand) {
    return run_view_case(cand, budget, checks).invariant == invariant;
  };
  for (int pass = 0; pass < 2; ++pass) {
    // Drop trailing ranks.
    while (c.n > 1) {
      ViewCase cand = c;
      --cand.n;
      cand.load_code.pop_back();
      cand.cpu_code.pop_back();
      cand.q_code.pop_back();
      cand.alive.pop_back();
      if (cand.whoami >= cand.n) cand.whoami = cand.n - 1;
      if (!still_fails(cand)) break;
      c = cand;
    }
    // Benign-ize one field at a time.
    for (int i = 0; i < c.n; ++i) {
      for (std::vector<int>* v : {&c.load_code, &c.cpu_code, &c.q_code}) {
        if ((*v)[static_cast<std::size_t>(i)] == kBenign) continue;
        ViewCase cand = c;
        const int saved = (*v)[static_cast<std::size_t>(i)];
        std::vector<int>* cv = v == &c.load_code   ? &cand.load_code
                               : v == &c.cpu_code ? &cand.cpu_code
                                                  : &cand.q_code;
        (*cv)[static_cast<std::size_t>(i)] = kBenign;
        if (still_fails(cand))
          (*v)[static_cast<std::size_t>(i)] = kBenign;
        else
          (*v)[static_cast<std::size_t>(i)] = saved;
      }
      if (!c.alive[static_cast<std::size_t>(i)]) {
        ViewCase cand = c;
        cand.alive[static_cast<std::size_t>(i)] = 1;
        if (still_fails(cand)) c.alive[static_cast<std::size_t>(i)] = 1;
      }
    }
    if (c.starve) {
      ViewCase cand = c;
      cand.starve = false;
      if (still_fails(cand)) c.starve = false;
    }
    if (c.whoami != 0 && c.n > 0) {
      ViewCase cand = c;
      cand.whoami = 0;
      if (still_fails(cand)) c.whoami = 0;
    }
  }
  return c;
}

// ---------------------------------------------------------------------------
// Level 2: hostile Lua environments against raw hook sources.
// ---------------------------------------------------------------------------

enum EnvMutation {
  kDropRow = 0,     // MDSs[2] = nil
  kFracKey,         // MDSs[1.5] = {...}
  kStrKey,          // MDSs["x"] = 3.14
  kCycle,           // MDSs[1].self = MDSs
  kRowNotTable,     // MDSs[1] = 42
  kTargetsNumber,   // targets = 5
  kWhoamiOOB,       // whoami = n + 3
  kWhoamiNaN,       // whoami = 0/0
  kTotalNaN,        // total = 0/0
  kNegLoads,        // every load field negative
  kNumEnvMutations,
};

const char* mutation_name(int m) {
  switch (m) {
    case kDropRow: return "drop-row";
    case kFracKey: return "frac-key";
    case kStrKey: return "str-key";
    case kCycle: return "cycle";
    case kRowNotTable: return "row-not-table";
    case kTargetsNumber: return "targets-number";
    case kWhoamiOOB: return "whoami-oob";
    case kWhoamiNaN: return "whoami-nan";
    case kTotalNaN: return "total-nan";
    case kNegLoads: return "neg-loads";
  }
  return "?";
}

constexpr const char* kHookNames[] = {"metaload", "mdsload", "when", "where",
                                      "howmuch"};

struct EnvCase {
  int policy = 0;  // index into the five Lua scripts
  int hook = 0;    // 0..4
  int n = 2;
  std::uint32_t muts = 0;  // bitmask of EnvMutation
  bool starve = false;
};

core::MantlePolicy policy_scripts(int idx) {
  switch (idx) {
    case 0: return core::scripts::original();
    case 1: return core::scripts::greedy_spill();
    case 2: return core::scripts::greedy_spill_even();
    case 3: return core::scripts::fill_and_spill();
    default: return core::scripts::adaptable();
  }
}

const char* policy_name(int idx) {
  switch (idx) {
    case 0: return "original";
    case 1: return "greedy_spill";
    case 2: return "greedy_spill_even";
    case 3: return "fill_and_spill";
    default: return "adaptable";
  }
}

std::string hook_source(const core::MantlePolicy& p, int* hook) {
  for (int k = 0; k < 5; ++k) {
    const int h = (*hook + k) % 5;
    const std::string& src = h == 0   ? p.metaload
                             : h == 1 ? p.mdsload
                             : h == 2 ? p.when
                             : h == 3 ? p.where
                                      : p.howmuch;
    if (!src.empty()) {
      *hook = h;
      return src;
    }
  }
  return "return 0";
}

EnvCase gen_env_case(Rng& rng) {
  EnvCase c;
  c.policy = static_cast<int>(rng.uniform(0, 4));
  c.hook = static_cast<int>(rng.uniform(0, 4));
  constexpr int kNs[] = {1, 2, 3, 5};
  c.n = kNs[rng.uniform(0, 3)];
  const std::uint64_t nmuts = rng.uniform(1, 3);
  for (std::uint64_t i = 0; i < nmuts; ++i)
    c.muts |= 1u << rng.uniform(0, kNumEnvMutations - 1);
  c.starve = rng.uniform(0, 7) == 0;
  return c;
}

/// Build the hostile hook environment in `in`; returns the MDSs table so
/// the caller can break reference cycles afterwards.
lua::TablePtr bind_env(lua::Interp& in, const EnvCase& c) {
  using lua::Value;
  auto mdss = lua::make_table();
  double total = 0.0;
  for (int i = 1; i <= c.n; ++i) {
    auto row = lua::make_table();
    const double load =
        (c.muts & (1u << kNegLoads)) ? -5.0 * i : 10.0 * i;
    row->set_str("auth", Value(0.8 * load));
    row->set_str("all", Value(load));
    row->set_str("cpu", Value(25.0 + i));
    row->set_str("mem", Value(40.0));
    row->set_str("q", Value(2.0));
    row->set_str("req", Value(3.0));
    row->set_str("load", Value(load));
    row->set_str("alive", Value(1.0));
    mdss->set_num(i, Value(row));
    total += load;
  }
  if ((c.muts & (1u << kDropRow)) && c.n >= 2) mdss->set_num(2, Value{});
  if (c.muts & (1u << kFracKey)) mdss->set_num(1.5, Value(7.0));
  if (c.muts & (1u << kStrKey)) mdss->set_str("x", Value(3.14));
  if (c.muts & (1u << kCycle)) {
    const Value row = mdss->get_num(1);
    if (row.is_table()) row.table()->set_str("self", Value(mdss));
  }
  if (c.muts & (1u << kRowNotTable)) mdss->set_num(1, Value(42.0));

  in.set_global("MDSs", Value(mdss));
  in.set_global("whoami", (c.muts & (1u << kWhoamiNaN)) ? Value(kQNan)
                          : (c.muts & (1u << kWhoamiOOB))
                              ? Value(static_cast<double>(c.n + 3))
                              : Value(1.0));
  in.set_global("total", (c.muts & (1u << kTotalNaN)) ? Value(kQNan)
                                                      : Value(total));
  in.set_global("targets", (c.muts & (1u << kTargetsNumber))
                               ? Value(5.0)
                               : Value(lua::make_table()));
  in.set_global("authmetaload", Value(8.0));
  in.set_global("allmetaload", Value(10.0));
  in.set_global("i", Value(1.0));
  for (const char* g : {"IRD", "IWR", "READDIR", "FETCH", "STORE"})
    in.set_global(g, Value(2.0));

  const auto pick2 = [](std::vector<Value>& a, bool want_max) {
    const double x = !a.empty() && a[0].is_number() ? a[0].number() : 0.0;
    const double y = a.size() > 1 && a[1].is_number() ? a[1].number() : 0.0;
    return std::vector<Value>{Value(want_max == (x > y) ? x : y)};
  };
  in.set_function("max", [pick2](std::vector<Value>& a, lua::Interp&) {
    return pick2(a, true);
  });
  in.set_function("min", [pick2](std::vector<Value>& a, lua::Interp&) {
    return pick2(a, false);
  });
  auto slot = std::make_shared<Value>(Value(0.0));
  in.set_function("WRstate", [slot](std::vector<Value>& a, lua::Interp&) {
    if (!a.empty()) *slot = a[0];
    return std::vector<Value>{};
  });
  in.set_function("RDstate", [slot](std::vector<Value>&, lua::Interp&) {
    return std::vector<Value>{*slot};
  });
  return mdss;
}

std::string run_env_once(const EnvCase& c, const lua::CompiledChunk& chunk,
                         std::uint64_t budget, CaseFailure* fail) {
  lua::Interp in;
  in.set_budget(c.starve ? 64 : budget);
  lua::TablePtr mdss;
  std::string sig;
  try {
    mdss = bind_env(in, c);
    const lua::RunResult r = in.run(chunk);
    sig = r.ok ? "ok:" + value_sig(r.first()) : "err:" + r.error;
  } catch (const std::exception& e) {
    *fail = {"no-exception-escape", e.what()};
  } catch (...) {
    *fail = {"no-exception-escape", "non-standard exception"};
  }
  if (mdss) mdss->clear();  // break MDSs[1].self = MDSs reference cycles
  return sig;
}

lua::CompiledChunk compile_hook(std::string src, int hook) {
  // Table-1 style `if <cond> then` when-fragments are completed the same
  // way MantleBalancer's classifier does before running them.
  if (hook == 2) {
    std::string t = src;
    while (!t.empty() && (t.back() == ' ' || t.back() == '\n' ||
                          t.back() == '\t' || t.back() == '\r'))
      t.pop_back();
    if (t.size() >= 4 && t.compare(t.size() - 4, 4, "then") == 0)
      src = t + " go = 1 end";
  }
  lua::CompiledChunk ch = lua::compile_expr(src, "fuzz");
  if (!ch.ok()) ch = lua::compile(src, "fuzz");
  return ch;
}

CaseFailure run_env_case(const EnvCase& c, std::uint64_t budget,
                         std::uint64_t* checks) {
  int hook = c.hook;
  const core::MantlePolicy p = policy_scripts(c.policy);
  const std::string src = hook_source(p, &hook);
  const lua::CompiledChunk chunk = compile_hook(src, hook);

  CaseFailure f;
  const std::string sig_a = run_env_once(c, chunk, budget, &f);
  ++*checks;
  if (!f.invariant.empty()) return f;
  const std::string sig_b = run_env_once(c, chunk, budget, &f);
  ++*checks;
  if (!f.invariant.empty()) return f;
  ++*checks;
  if (sig_a != sig_b)
    return {"determinism", "run1 {" + sig_a + "} run2 {" + sig_b + "}"};
  return {};
}

std::string env_repro(const EnvCase& c, const CaseFailure& f) {
  int hook = c.hook;
  const core::MantlePolicy p = policy_scripts(c.policy);
  hook_source(p, &hook);  // resolve the hook actually exercised
  std::string out = "env policy=";
  out += policy_name(c.policy);
  out += " hook=";
  out += kHookNames[hook];
  out += " n=" + std::to_string(c.n);
  out += " muts=[";
  bool first = true;
  for (int m = 0; m < kNumEnvMutations; ++m)
    if (c.muts & (1u << m)) {
      out += std::string(first ? "" : ",") + mutation_name(m);
      first = false;
    }
  out += "]";
  if (c.starve) out += " starve=1";
  out += " :: " + f.invariant;
  return out;
}

EnvCase shrink_env(EnvCase c, const std::string& invariant,
                   std::uint64_t budget, std::uint64_t* checks) {
  const auto still_fails = [&](const EnvCase& cand) {
    return run_env_case(cand, budget, checks).invariant == invariant;
  };
  for (int m = 0; m < kNumEnvMutations; ++m) {
    if (!(c.muts & (1u << m))) continue;
    EnvCase cand = c;
    cand.muts &= ~(1u << m);
    if (still_fails(cand)) c.muts = cand.muts;
  }
  while (c.n > 1) {
    EnvCase cand = c;
    --cand.n;
    if (!still_fails(cand)) break;
    c = cand;
  }
  if (c.starve) {
    EnvCase cand = c;
    cand.starve = false;
    if (still_fails(cand)) c.starve = false;
  }
  return c;
}

// ---------------------------------------------------------------------------
// Level 3: hostile arguments to the stdlib surface hooks rely on.
// ---------------------------------------------------------------------------

constexpr const char* kNumPool[] = {
    "0",       "-1",    "0.5",   "-0.5",  "3",      "1e15",
    "-1e15",   "1e308", "-1e308", "(1/0)", "(-1/0)", "(0/0)",
    "9007199254740993", "1e20", "-7.25",
};
constexpr int kNumPoolSize = 15;

constexpr const char* kStrPool[] = {
    "'  42  '", "' \\t0x1F '", "'1e3\\n'", "'abc'",      "'0x'",
    "'-0x8'",   "''",          "'0X10'",   "'  -3.5e2  '", "'nan'",
};
constexpr int kStrPoolSize = 10;

/// $A/$B -> numeric pool picks, $S -> string pool pick.
constexpr const char* kLibTemplates[] = {
    "return string.format('%d', $A)",
    "return string.format('%x', $A)",
    "return string.format('%f', $A)",
    "return string.format('%g %s', $A, $A)",
    "return string.format('%5.2f', $A)",
    "return math.fmod($A, $B)",
    "return string.sub('abcdefgh', $A, $B)",
    "return string.rep('ab', $A)",
    "local t = {1, 2, 3} table.insert(t, $A, 9) return #t",
    "local t = {1, 2, 3} return table.remove(t, $A)",
    "return select($A, 1, 2, 3)",
    "return unpack({1, 2, 3}, $A, $B)",
    "return tonumber($S)",
    "return tostring($A)",
    "local t = {} t[$A] = 1 return #t",
    "return tonumber($S) == nil and 0 or tonumber($S) + 1",
};
constexpr int kNumLibTemplates = 16;

std::string build_lib_script(Rng& rng) {
  std::string s = kLibTemplates[rng.uniform(0, kNumLibTemplates - 1)];
  const std::string a = kNumPool[rng.uniform(0, kNumPoolSize - 1)];
  const std::string b = kNumPool[rng.uniform(0, kNumPoolSize - 1)];
  const std::string str = kStrPool[rng.uniform(0, kStrPoolSize - 1)];
  for (std::size_t pos; (pos = s.find("$A")) != std::string::npos;)
    s.replace(pos, 2, a);
  for (std::size_t pos; (pos = s.find("$B")) != std::string::npos;)
    s.replace(pos, 2, b);
  for (std::size_t pos; (pos = s.find("$S")) != std::string::npos;)
    s.replace(pos, 2, str);
  return s;
}

CaseFailure run_lib_case(const std::string& script, std::uint64_t budget,
                         std::uint64_t* checks) {
  const lua::CompiledChunk chunk = lua::compile(script, "fuzz");
  std::string sigs[2];
  for (std::string& sig : sigs) {
    ++*checks;
    try {
      lua::Interp in;
      in.set_budget(budget);
      const lua::RunResult r = in.run(chunk);
      sig = r.ok ? "ok:" + value_sig(r.first()) : "err:" + r.error;
    } catch (const std::exception& e) {
      return {"no-exception-escape", e.what()};
    } catch (...) {
      return {"no-exception-escape", "non-standard exception"};
    }
  }
  ++*checks;
  if (sigs[0] != sigs[1])
    return {"determinism", "run1 {" + sigs[0] + "} run2 {" + sigs[1] + "}"};
  return {};
}

}  // namespace

FuzzResult run_fuzz(const FuzzConfig& cfg, obs::MetricsRegistry* metrics,
                    obs::TraceSink* trace) {
  FuzzResult res;
  Rng rng(cfg.seed);

  for (std::uint64_t it = 0; it < cfg.iters; ++it) {
    if (res.failures.size() >= cfg.max_failures) break;
    ++res.iterations;
    FuzzFailure fail;
    fail.iteration = it;

    switch (it % 3) {
      case 0: {
        fail.level = "view";
        const ViewCase c = gen_view_case(rng);
        fail.subject = kSubjects[c.subject].name;
        const CaseFailure f = run_view_case(c, cfg.budget, &res.checks);
        if (f.invariant.empty()) continue;
        const ViewCase mini =
            shrink_view(c, f.invariant, cfg.budget, &res.checks);
        const CaseFailure mf = run_view_case(mini, cfg.budget, &res.checks);
        fail.invariant = f.invariant;
        fail.detail = mf.detail.empty() ? f.detail : mf.detail;
        fail.reproducer = view_repro(mini, f);
        break;
      }
      case 1: {
        fail.level = "env";
        const EnvCase c = gen_env_case(rng);
        fail.subject = policy_name(c.policy);
        const CaseFailure f = run_env_case(c, cfg.budget, &res.checks);
        if (f.invariant.empty()) continue;
        const EnvCase mini =
            shrink_env(c, f.invariant, cfg.budget, &res.checks);
        const CaseFailure mf = run_env_case(mini, cfg.budget, &res.checks);
        fail.invariant = f.invariant;
        fail.detail = mf.detail.empty() ? f.detail : mf.detail;
        fail.reproducer = env_repro(mini, f);
        break;
      }
      default: {
        fail.level = "stdlib";
        const std::string script = build_lib_script(rng);
        fail.subject = "luam-stdlib";
        const CaseFailure f = run_lib_case(script, cfg.budget, &res.checks);
        if (f.invariant.empty()) continue;
        fail.invariant = f.invariant;
        fail.detail = f.detail;
        fail.reproducer = "stdlib script={" + script + "} :: " + f.invariant;
        break;
      }
    }
    res.failures.push_back(std::move(fail));
  }

  if (metrics != nullptr) {
    metrics
        ->counter("mantle_fuzz_iterations_total", "fuzz cases executed")
        .inc(res.iterations);
    metrics
        ->counter("mantle_fuzz_crashes_total",
                  "fuzz invariant violations found")
        .inc(res.failures.size());
  }
  if (trace != nullptr)
    for (const FuzzFailure& f : res.failures)
      trace->event(f.iteration, obs::EventKind::FuzzCrash, -1, -1,
                   f.level + ":" + f.invariant,
                   {{"iteration", static_cast<double>(f.iteration)}});
  return res;
}

std::string FuzzResult::corpus() const {
  std::string out;
  for (const FuzzFailure& f : failures) {
    out += "iter=" + u64s(f.iteration) + " " + f.reproducer;
    if (!f.detail.empty()) out += " :: " + f.detail;
    out += "\n";
  }
  return out;
}

std::string FuzzResult::to_json() const {
  std::string out = "{\"checks\":" + u64s(checks);
  out += ",\"failures\":[";
  bool first = true;
  for (const FuzzFailure& f : failures) {
    if (!first) out += ",";
    first = false;
    out += "{\"detail\":" + json_str(f.detail);
    out += ",\"invariant\":" + json_str(f.invariant);
    out += ",\"iteration\":" + u64s(f.iteration);
    out += ",\"level\":" + json_str(f.level);
    out += ",\"reproducer\":" + json_str(f.reproducer);
    out += ",\"subject\":" + json_str(f.subject) + "}";
  }
  out += "],\"iterations\":" + u64s(iterations) + "}";
  return out;
}

}  // namespace mantle::safety
