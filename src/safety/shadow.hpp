#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/mantle.hpp"
#include "obs/analyze.hpp"
#include "obs/trace.hpp"

/// \file shadow.hpp
/// Shadow evaluation: replay a recorded span-level trace against a
/// *candidate* policy before injecting it into a live cluster — the
/// paper's "check the logic before injecting policies" item, at
/// production standards. The budgeted interpreter (validate_policy)
/// rejects syntax errors and infinite loops; shadow evaluation rejects
/// policies that are *well-formed but harmful*: ones that ping-pong
/// subtrees, thrash (migrate every tick while shipping nothing), or
/// error/blow their budget on real inputs.
///
/// The replay is driven by the recorded timeline (`*.trace.json` dumps
/// from src/obs): every recorded balancer tick (a `when` event) is
/// re-run through the candidate's when/where/howmuch hooks in a
/// sandboxed MantleBalancer, against a *shadow load model*. Per-rank
/// load evolves from the recorded workload growth (positive
/// heartbeat-to-heartbeat deltas — arrivals hitting that rank) plus the
/// candidate's own exports; recorded load *drops* are deliberately
/// excluded, since they are the recorded balancer's migrations and
/// replaying them under a candidate that also migrates would count the
/// rebalancing twice. Each shadow export ships an identified chunk (a
/// subtree stand-in; re-exports that give back a comparable amount of
/// load prefer the chunk most recently imported from the destination,
/// so a policy that bounces load back and forth bounces the *same*
/// chunk, exactly what the ping-pong detector keys on, while small
/// organic counter-flows ship fresh chunks and do not trip it). The
/// synthetic timeline then runs through the obs/analyze
/// detectors; any trip, or hook errors / budget exhaustions above
/// threshold, rejects the candidate.

namespace mantle::obs {
class MetricsRegistry;
}  // namespace mantle::obs

namespace mantle::safety {

struct ShadowConfig {
  /// Interpreter budget per hook call in the sandbox (same default as a
  /// live MantleBalancer).
  std::uint64_t budget = 1 << 20;
  std::uint64_t lua_seed = 0;
  /// Reject when hook errors exceed this fraction of hook calls.
  /// Non-zero tolerance: a policy guarding MDSs[whoami+1] on the last
  /// rank of a *recorded* cluster layout it never saw may take a few
  /// counted sanitizations without being dangerous.
  double max_hook_error_rate = 0.05;
  /// Budget exhaustions are never tolerated: one means the policy has an
  /// input-dependent unbounded loop that validate_policy's synthetic
  /// view did not reach.
  std::uint64_t max_budget_exhaustions = 0;
  /// `need_min` scaling applied to targets when sizing shadow exports,
  /// mirroring ClusterConfig::need_min_factor's default.
  double need_min_factor = 0.8;
  /// Ignore shadow export goals at or below this load (mirrors
  /// ClusterConfig::bal_min_load's spirit; keeps noise exports out).
  double min_export_load = 1e-9;
  /// Detector thresholds for the synthetic timeline.
  obs::AnalyzeConfig analyze;
};

/// The outcome of one shadow evaluation.
struct ShadowVerdict {
  bool accepted = false;
  std::string reason;  ///< first rejection reason; empty when accepted

  std::uint64_t ticks_replayed = 0;     ///< recorded `when` events re-run
  std::uint64_t hook_calls = 0;         ///< candidate hook evaluations
  std::uint64_t hook_errors = 0;        ///< errors + counted sanitizations
  std::uint64_t budget_exhaustions = 0; ///< hook runs that hit the budget
  std::uint64_t exports = 0;            ///< shadow migrations performed
  int num_ranks = 0;

  /// Analysis of the synthetic decision timeline (detectors included).
  obs::Report report;

  /// Deterministic JSON (name-ordered keys), embedding report.to_json().
  std::string to_json() const;
  /// Human-readable block for terminals.
  std::string to_table() const;
};

/// Replay `recorded` against `policy`. `metrics` (optional) receives
/// mantle_shadow_{evaluations,rejections}_total; `verdict_trace`
/// (optional) gets one ShadowVerdict event stamped at the end of the
/// replayed timeline. Deterministic: same events + same policy + same
/// config => byte-identical verdict JSON.
ShadowVerdict shadow_evaluate(const std::vector<obs::TraceEvent>& recorded,
                              const core::MantlePolicy& policy,
                              const ShadowConfig& cfg = {},
                              obs::MetricsRegistry* metrics = nullptr,
                              obs::TraceSink* verdict_trace = nullptr);

/// The injection gate: validate (syntax + budgeted dry run) and then
/// shadow-evaluate. Returns "" when the policy may be injected, or a
/// description of why it must not be.
std::string gate_injection(const std::vector<obs::TraceEvent>& recorded,
                           const core::MantlePolicy& policy,
                           const ShadowConfig& cfg = {},
                           obs::MetricsRegistry* metrics = nullptr,
                           obs::TraceSink* verdict_trace = nullptr);

/// Load a Mantle policy from a named builtin ("original", "greedy",
/// "greedy_even", "fill_spill", "adaptable") or from a policy file:
/// hook sections introduced by `[metaload]` / `[mdsload]` / `[when]` /
/// `[where]` / `[howmuch]` lines, everything between sections being the
/// hook source. Returns "" and fills `out` on success, else the error.
std::string load_policy(const std::string& name_or_path,
                        core::MantlePolicy& out);

}  // namespace mantle::safety
