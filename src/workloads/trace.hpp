#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/workload.hpp"

/// \file trace.hpp
/// Record/replay workloads: a trace is a flat list of operations with an
/// optional fixed think time. Traces serialize to a simple line format
/// ("<op> <dir_path> [<name>]") so experiments can be captured once and
/// replayed against different balancers — the "suite of workloads over
/// different balancers" the paper lists as immediate future work.

namespace mantle::workloads {

class TraceWorkload final : public sim::Workload {
 public:
  explicit TraceWorkload(std::vector<sim::WorkOp> ops,
                         mantle::Time think = 0)
      : ops_(std::move(ops)), think_(think) {}

  std::optional<sim::WorkOp> next(mantle::Rng& rng) override {
    (void)rng;
    if (pos_ >= ops_.size()) return std::nullopt;
    return ops_[pos_++];
  }

  mantle::Time think_time(mantle::Rng& rng) override {
    (void)rng;
    return think_;
  }

  std::string name() const override { return "trace"; }
  std::size_t size() const { return ops_.size(); }

 private:
  std::vector<sim::WorkOp> ops_;
  mantle::Time think_;
  std::size_t pos_ = 0;
};

/// Serialize a trace to the line format. Inverse of parse_trace.
std::string format_trace(const std::vector<sim::WorkOp>& ops);

/// Parse the line format; throws std::runtime_error on malformed lines.
std::vector<sim::WorkOp> parse_trace(const std::string& text);

/// Capture every op another workload yields (drains it) so it can be
/// replayed deterministically.
std::vector<sim::WorkOp> record_workload(sim::Workload& wl, mantle::Rng& rng,
                                         std::size_t max_ops = 1 << 22);

}  // namespace mantle::workloads
