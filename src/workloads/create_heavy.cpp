#include "workloads/create_heavy.hpp"

namespace mantle::workloads {

std::optional<sim::WorkOp> CreateHeavyWorkload::next(mantle::Rng& /*rng*/) {
  if (opt_.make_dir && !mkdir_done_) {
    mkdir_done_ = true;
    const auto parts = mantle::mds::split_path(opt_.dir);
    if (!parts.empty()) {
      std::string parent = "/";
      for (std::size_t i = 0; i + 1 < parts.size(); ++i)
        parent += parts[i] + "/";
      return sim::WorkOp{cluster::OpType::Mkdir, parent, parts.back()};
    }
  }
  if (issued_ < opt_.num_files) {
    sim::WorkOp op;
    op.op = cluster::OpType::Create;
    op.dir_path = opt_.dir;
    op.name = opt_.name_prefix + "f" + std::to_string(issued_++);
    return op;
  }
  if (opt_.unlink_after && unlinked_ < opt_.num_files) {
    sim::WorkOp op;
    op.op = cluster::OpType::Unlink;
    op.dir_path = opt_.dir;
    op.name = opt_.name_prefix + "f" + std::to_string(unlinked_++);
    return op;
  }
  return std::nullopt;
}

mantle::Time CreateHeavyWorkload::think_time(mantle::Rng& rng) {
  if (opt_.think_mean == 0) return 0;
  return mantle::from_seconds(
      rng.exponential(mantle::to_seconds(opt_.think_mean)));
}

std::unique_ptr<sim::Workload> make_private_create_workload(
    int client_id, std::size_t num_files, mantle::Time think_mean) {
  CreateHeavyWorkload::Options opt;
  opt.dir = "/client" + std::to_string(client_id);
  opt.make_dir = true;
  opt.num_files = num_files;
  opt.name_prefix = "";
  opt.think_mean = think_mean;
  return std::make_unique<CreateHeavyWorkload>(std::move(opt));
}

std::unique_ptr<sim::Workload> make_shared_create_workload(
    int client_id, const std::string& shared_dir, std::size_t num_files,
    mantle::Time think_mean) {
  CreateHeavyWorkload::Options opt;
  opt.dir = shared_dir;
  opt.make_dir = true;  // first client wins; later mkdirs fail harmlessly
  opt.num_files = num_files;
  opt.name_prefix = "c" + std::to_string(client_id) + "_";
  opt.think_mean = think_mean;
  return std::make_unique<CreateHeavyWorkload>(std::move(opt));
}

}  // namespace mantle::workloads
