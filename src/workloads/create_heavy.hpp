#pragma once

#include <memory>
#include <string>

#include "sim/workload.hpp"

/// \file create_heavy.hpp
/// The paper's primary stress workload: each client creates N files,
/// either in a private directory ("creating 100,000 files in separate
/// directories", Figures 4/5) or in one shared directory ("clients
/// creating files in the same directory", Figures 7/8 — the GIGA+-style
/// dirfrag-splitting scenario). Creates are a common HPC pattern
/// (checkpoint/restart), which is why the paper leads with them.

namespace mantle::workloads {

class CreateHeavyWorkload final : public sim::Workload {
 public:
  struct Options {
    std::string dir = "/shared";   // target directory
    bool make_dir = true;          // issue a Mkdir first (idempotent-ish:
                                   // duplicates fail harmlessly)
    std::size_t num_files = 100000;
    std::string name_prefix;       // must be client-unique for shared dirs
    mantle::Time think_mean = 350; // client-side gap between creates (us)
    bool unlink_after = false;     // delete everything again (checkpoint
                                   // cleanup; drives dirfrag merging)
  };

  explicit CreateHeavyWorkload(Options opt) : opt_(std::move(opt)) {}

  std::optional<sim::WorkOp> next(mantle::Rng& rng) override;
  mantle::Time think_time(mantle::Rng& rng) override;
  std::string name() const override { return "create-heavy"; }

 private:
  Options opt_;
  bool mkdir_done_ = false;
  std::size_t issued_ = 0;
  std::size_t unlinked_ = 0;
};

/// Convenience factory for the standard per-client private-dir variant.
std::unique_ptr<sim::Workload> make_private_create_workload(
    int client_id, std::size_t num_files, mantle::Time think_mean = 350);

/// Convenience factory for the shared-dir variant.
std::unique_ptr<sim::Workload> make_shared_create_workload(
    int client_id, const std::string& shared_dir, std::size_t num_files,
    mantle::Time think_mean = 350);

}  // namespace mantle::workloads
