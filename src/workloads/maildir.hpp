#pragma once

#include <memory>
#include <string>

#include "sim/workload.hpp"

/// \file maildir.hpp
/// Maildir-style delivery: every message is created in `tmp/` and then
/// atomically renamed into `new/` — the classic rename-heavy metadata
/// workload (mail spools, log rotation, atomic-publish pipelines).
/// Renames are the third migration-relevant operation in CephFS (client
/// sessions are flushed when slave MDS nodes rename directories), so
/// this workload stresses a path the create benchmarks never touch.

namespace mantle::workloads {

class MaildirWorkload final : public sim::Workload {
 public:
  struct Options {
    std::string root = "/mail";     // per-client spool root
    std::size_t num_messages = 10000;
    std::size_t readdir_every = 64; // scan new/ after this many deliveries
    mantle::Time think_mean = 200;
  };

  explicit MaildirWorkload(Options opt) : opt_(std::move(opt)) {}

  std::optional<sim::WorkOp> next(mantle::Rng& rng) override;
  mantle::Time think_time(mantle::Rng& rng) override;
  std::string name() const override { return "maildir"; }

 private:
  enum class Setup { Root, Tmp, New, Done };

  Options opt_;
  Setup setup_ = Setup::Root;
  std::size_t delivered_ = 0;
  // Per-message micro state machine: 0 = create in tmp, 1 = rename to new.
  int msg_step_ = 0;
  bool readdir_pending_ = false;
};

std::unique_ptr<sim::Workload> make_maildir_workload(
    int client_id, std::size_t num_messages, mantle::Time think_mean = 200);

}  // namespace mantle::workloads
