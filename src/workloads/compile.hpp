#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/workload.hpp"

/// \file compile.hpp
/// Model of compiling a source tree the size/shape of the Linux kernel,
/// the paper's second workload (Figures 1, 3, 9, 10). Four phases with
/// distinct metadata signatures:
///
///   1. untar   — mkdir the tree, then sequential creates sweeping the
///                directories (high spatial locality moving front).
///   2. compile — reads/lookups/creates concentrated in hot directories
///                (arch, kernel, fs, mm), with compute think time.
///   3. read    — getattr sweep over the tree (e.g. depmod/install).
///   4. link    — a readdir flash crowd over every directory, the spike
///                that overloads a single MDS at the end of Figure 10.
///
/// The substitution preserves exactly what the paper's figures depend on:
/// hotspot structure, phase shifts, request-type mix, and the final flash
/// crowd. See DESIGN.md §2.

namespace mantle::workloads {

struct CompileOptions {
  std::string root = "/src";   // per-client source tree root
  std::size_t files_per_dir = 40;
  std::size_t compile_ops = 4000;
  std::size_t read_ops = 1200;
  std::size_t link_rounds = 6;      // readdir sweeps during "linking"
  mantle::Time untar_think = 50;    // us between untar ops (tar is fast)
  mantle::Time compile_think = 900; // compilation compute between ops
  mantle::Time read_think = 120;
  mantle::Time link_think = 30;     // the flash crowd hits fast
};

/// The directory list and hotspot weights of the modelled tree.
struct CompileDirSpec {
  const char* name;
  double hot_weight;   // probability mass during the compile phase
  double size_factor;  // files_per_dir multiplier
};
const std::vector<CompileDirSpec>& compile_tree_spec();

class CompileWorkload final : public sim::Workload {
 public:
  explicit CompileWorkload(CompileOptions opt);

  std::optional<sim::WorkOp> next(mantle::Rng& rng) override;
  mantle::Time think_time(mantle::Rng& rng) override;
  std::string name() const override { return "compile"; }

  enum class Phase { Untar, Compile, Read, Link, Done };
  Phase phase() const { return phase_; }

 private:
  sim::WorkOp untar_next();
  sim::WorkOp compile_next(mantle::Rng& rng);
  sim::WorkOp read_next();
  sim::WorkOp link_next();

  std::size_t pick_hot_dir(mantle::Rng& rng) const;

  CompileOptions opt_;
  Phase phase_ = Phase::Untar;

  // Untar progress: directories then files per directory.
  std::size_t untar_dir_ = 0;
  std::size_t untar_file_ = 0;
  bool root_made_ = false;

  // Per-dir source file counts (filled during untar planning).
  std::vector<std::size_t> files_in_dir_;
  std::vector<double> hot_cdf_;

  std::size_t compile_done_ = 0;
  std::size_t objects_made_ = 0;
  std::size_t read_done_ = 0;
  std::size_t link_round_ = 0;
  std::size_t link_dir_ = 0;
};

std::unique_ptr<sim::Workload> make_compile_workload(int client_id,
                                                     CompileOptions opt = {});

}  // namespace mantle::workloads
