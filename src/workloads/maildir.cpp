#include "workloads/maildir.hpp"

namespace mantle::workloads {

std::optional<sim::WorkOp> MaildirWorkload::next(mantle::Rng& /*rng*/) {
  switch (setup_) {
    case Setup::Root: {
      setup_ = Setup::Tmp;
      const auto parts = mantle::mds::split_path(opt_.root);
      std::string parent = "/";
      for (std::size_t i = 0; i + 1 < parts.size(); ++i) parent += parts[i] + "/";
      return sim::WorkOp{cluster::OpType::Mkdir, parent, parts.back()};
    }
    case Setup::Tmp:
      setup_ = Setup::New;
      return sim::WorkOp{cluster::OpType::Mkdir, opt_.root, "tmp"};
    case Setup::New:
      setup_ = Setup::Done;
      return sim::WorkOp{cluster::OpType::Mkdir, opt_.root, "new"};
    case Setup::Done:
      break;
  }

  if (readdir_pending_) {
    readdir_pending_ = false;
    return sim::WorkOp{cluster::OpType::Readdir, opt_.root + "/new", ""};
  }
  if (delivered_ >= opt_.num_messages) return std::nullopt;

  const std::string msg = "msg" + std::to_string(delivered_);
  if (msg_step_ == 0) {
    msg_step_ = 1;
    return sim::WorkOp{cluster::OpType::Create, opt_.root + "/tmp", msg};
  }
  msg_step_ = 0;
  ++delivered_;
  if (opt_.readdir_every != 0 && delivered_ % opt_.readdir_every == 0)
    readdir_pending_ = true;
  sim::WorkOp op;
  op.op = cluster::OpType::Rename;
  op.dir_path = opt_.root + "/tmp";
  op.name = msg;
  op.dst_dir_path = opt_.root + "/new";
  op.dst_name = msg;
  return op;
}

mantle::Time MaildirWorkload::think_time(mantle::Rng& rng) {
  if (opt_.think_mean == 0) return 0;
  return mantle::from_seconds(
      rng.exponential(mantle::to_seconds(opt_.think_mean)));
}

std::unique_ptr<sim::Workload> make_maildir_workload(int client_id,
                                                     std::size_t num_messages,
                                                     mantle::Time think_mean) {
  MaildirWorkload::Options opt;
  opt.root = "/mail" + std::to_string(client_id);
  opt.num_messages = num_messages;
  opt.think_mean = think_mean;
  return std::make_unique<MaildirWorkload>(std::move(opt));
}

}  // namespace mantle::workloads
