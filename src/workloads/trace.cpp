#include "workloads/trace.hpp"

#include <sstream>
#include <stdexcept>

namespace mantle::workloads {

namespace {

cluster::OpType op_from_name(const std::string& s) {
  if (s == "create") return cluster::OpType::Create;
  if (s == "mkdir") return cluster::OpType::Mkdir;
  if (s == "getattr") return cluster::OpType::Getattr;
  if (s == "lookup") return cluster::OpType::Lookup;
  if (s == "readdir") return cluster::OpType::Readdir;
  if (s == "unlink") return cluster::OpType::Unlink;
  if (s == "rename") return cluster::OpType::Rename;
  throw std::runtime_error("unknown trace op: " + s);
}

}  // namespace

std::string format_trace(const std::vector<sim::WorkOp>& ops) {
  std::string out;
  for (const sim::WorkOp& op : ops) {
    out += cluster::op_name(op.op);
    out += ' ';
    out += op.dir_path;
    if (!op.name.empty()) {
      out += ' ';
      out += op.name;
    }
    if (op.op == cluster::OpType::Rename) {
      out += ' ';
      out += op.dst_dir_path;
      out += ' ';
      out += op.dst_name;
    }
    out += '\n';
  }
  return out;
}

std::vector<sim::WorkOp> parse_trace(const std::string& text) {
  std::vector<sim::WorkOp> out;
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string op;
    std::string dir;
    std::string name;
    if (!(ls >> op >> dir))
      throw std::runtime_error("trace line " + std::to_string(lineno) +
                               ": expected '<op> <dir> [<name>]'");
    ls >> name;  // optional
    sim::WorkOp wop{op_from_name(op), dir, name};
    if (wop.op == cluster::OpType::Rename) {
      if (!(ls >> wop.dst_dir_path >> wop.dst_name))
        throw std::runtime_error("trace line " + std::to_string(lineno) +
                                 ": rename needs <src_dir> <src_name> <dst_dir> <dst_name>");
    }
    out.push_back(std::move(wop));
  }
  return out;
}

std::vector<sim::WorkOp> record_workload(sim::Workload& wl, mantle::Rng& rng,
                                         std::size_t max_ops) {
  std::vector<sim::WorkOp> out;
  while (out.size() < max_ops) {
    auto op = wl.next(rng);
    if (!op) break;
    out.push_back(std::move(*op));
  }
  return out;
}

}  // namespace mantle::workloads
