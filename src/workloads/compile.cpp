#include "workloads/compile.hpp"

namespace mantle::workloads {

const std::vector<CompileDirSpec>& compile_tree_spec() {
  // Weights concentrate compile-phase heat in arch/kernel/fs/mm, matching
  // the hotspots in the paper's Figure 1; drivers/include are the big
  // directories, as in the Linux tree.
  static const std::vector<CompileDirSpec> spec = {
      {"arch", 0.20, 1.5},    {"kernel", 0.22, 1.0}, {"fs", 0.16, 1.2},
      {"mm", 0.12, 0.8},      {"include", 0.08, 2.0}, {"drivers", 0.06, 3.0},
      {"net", 0.04, 1.5},     {"lib", 0.03, 0.8},     {"block", 0.02, 0.5},
      {"crypto", 0.02, 0.5},  {"init", 0.01, 0.3},    {"ipc", 0.01, 0.3},
      {"scripts", 0.01, 0.5}, {"security", 0.01, 0.5}, {"sound", 0.01, 1.0},
  };
  return spec;
}

CompileWorkload::CompileWorkload(CompileOptions opt) : opt_(std::move(opt)) {
  const auto& spec = compile_tree_spec();
  files_in_dir_.reserve(spec.size());
  hot_cdf_.reserve(spec.size());
  double acc = 0.0;
  for (const CompileDirSpec& d : spec) {
    files_in_dir_.push_back(std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(opt_.files_per_dir) *
                                    d.size_factor)));
    acc += d.hot_weight;
    hot_cdf_.push_back(acc);
  }
  // Normalize the CDF (weights above sum to < 1 by design).
  for (double& c : hot_cdf_) c /= acc;
}

std::size_t CompileWorkload::pick_hot_dir(mantle::Rng& rng) const {
  const double u = rng.next_double();
  for (std::size_t i = 0; i < hot_cdf_.size(); ++i)
    if (u <= hot_cdf_[i]) return i;
  return hot_cdf_.size() - 1;
}

std::optional<sim::WorkOp> CompileWorkload::next(mantle::Rng& rng) {
  switch (phase_) {
    case Phase::Untar:
      return untar_next();
    case Phase::Compile:
      return compile_next(rng);
    case Phase::Read:
      return read_next();
    case Phase::Link:
      return link_next();
    case Phase::Done:
      return std::nullopt;
  }
  return std::nullopt;
}

sim::WorkOp CompileWorkload::untar_next() {
  const auto& spec = compile_tree_spec();
  if (!root_made_) {
    root_made_ = true;
    const auto parts = mantle::mds::split_path(opt_.root);
    std::string parent = "/";
    for (std::size_t i = 0; i + 1 < parts.size(); ++i) parent += parts[i] + "/";
    return {cluster::OpType::Mkdir, parent, parts.back()};
  }
  // One mkdir per directory, then its files, then the next directory —
  // the sequential front of heat visible in Figure 1's untar band.
  // untar_file_ == 0 means the mkdir for spec[untar_dir_] is pending.
  if (untar_file_ == 0) {
    ++untar_file_;
    return {cluster::OpType::Mkdir, opt_.root, spec[untar_dir_].name};
  }
  const std::string dir = opt_.root + "/" + spec[untar_dir_].name;
  const std::size_t f = untar_file_ - 1;
  sim::WorkOp op{cluster::OpType::Create, dir, "s" + std::to_string(f)};
  ++untar_file_;
  if (untar_file_ > files_in_dir_[untar_dir_]) {
    untar_file_ = 0;
    ++untar_dir_;
    if (untar_dir_ >= spec.size()) phase_ = Phase::Compile;
  }
  return op;
}

sim::WorkOp CompileWorkload::compile_next(mantle::Rng& rng) {
  const auto& spec = compile_tree_spec();
  const std::size_t d = pick_hot_dir(rng);
  const std::string dir = opt_.root + "/" + spec[d].name;
  ++compile_done_;
  if (compile_done_ >= opt_.compile_ops) phase_ = Phase::Read;

  const double u = rng.next_double();
  if (u < 0.50) {
    // Read a source file's attributes (open for read).
    const std::size_t f = rng.uniform(0, files_in_dir_[d] - 1);
    return {cluster::OpType::Getattr, dir, "s" + std::to_string(f)};
  }
  if (u < 0.80) {
    // Emit an object file.
    return {cluster::OpType::Create, dir,
            "o" + std::to_string(objects_made_++)};
  }
  // Header lookup (usually in include/, but modelled per-dir).
  const std::size_t f = rng.uniform(0, files_in_dir_[d] - 1);
  return {cluster::OpType::Lookup, dir, "s" + std::to_string(f)};
}

sim::WorkOp CompileWorkload::read_next() {
  const auto& spec = compile_tree_spec();
  // Sweep getattrs across directories round-robin.
  const std::size_t idx = read_done_++;
  if (read_done_ >= opt_.read_ops) phase_ = Phase::Link;
  const std::size_t d = idx % spec.size();
  const std::size_t f = (idx / spec.size()) % files_in_dir_[d];
  return {cluster::OpType::Getattr, opt_.root + "/" + spec[d].name,
          "s" + std::to_string(f)};
}

sim::WorkOp CompileWorkload::link_next() {
  const auto& spec = compile_tree_spec();
  const sim::WorkOp op{cluster::OpType::Readdir,
                       opt_.root + "/" + spec[link_dir_].name, ""};
  if (++link_dir_ >= spec.size()) {
    link_dir_ = 0;
    if (++link_round_ >= opt_.link_rounds) phase_ = Phase::Done;
  }
  return op;
}

mantle::Time CompileWorkload::think_time(mantle::Rng& rng) {
  mantle::Time mean = 0;
  switch (phase_) {
    case Phase::Untar: mean = opt_.untar_think; break;
    case Phase::Compile: mean = opt_.compile_think; break;
    case Phase::Read: mean = opt_.read_think; break;
    case Phase::Link: mean = opt_.link_think; break;
    case Phase::Done: return 0;
  }
  if (mean == 0) return 0;
  return mantle::from_seconds(rng.exponential(mantle::to_seconds(mean)));
}

std::unique_ptr<sim::Workload> make_compile_workload(int client_id,
                                                     CompileOptions opt) {
  if (opt.root == "/src") opt.root = "/client" + std::to_string(client_id);
  return std::make_unique<CompileWorkload>(std::move(opt));
}

}  // namespace mantle::workloads
