#include "chaos/chaos.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <tuple>

#include "balancers/builtin.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "sim/scenario.hpp"
#include "workloads/compile.hpp"
#include "workloads/create_heavy.hpp"

namespace mantle::chaos {

namespace {

// Generated fault times land in [kEventFrom, kEventTo]; every scenario is
// sized to still be mid-workload across that whole window.
constexpr Time kEventFrom = 500 * kMsec;
constexpr Time kEventTo = 6 * kSec;
constexpr Time kWindowMin = 500 * kMsec;
constexpr Time kWindowMax = 3 * kSec;
constexpr Time kDelayMin = 200 * kMsec;
constexpr Time kDelayMax = 2 * kSec;

constexpr int kNumMds = 3;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Deterministic window-based injector. Unlike fault::FaultInjector this
/// draws no randomness at injection time: every decision is a pure
/// function of (schedule, simulated clock, object id), so dropping one
/// event from the schedule leaves every other fault byte-for-byte in
/// place — the property the shrinker relies on.
class ChaosInjector final : public cluster::NetworkFaults {
 public:
  ChaosInjector(ChaosSchedule schedule, cluster::MdsCluster& cluster)
      : sched_(std::move(schedule)), cluster_(cluster) {
    cluster.set_network_faults(this);
    cluster.object_store().set_fault_hook(
        [this](store::StoreOp, const std::string& oid) {
          return store_faulted(oid);
        });
    for (const ChaosEvent& e : sched_.events) {
      if (e.kind == FaultKind::Crash) {
        cluster.engine().schedule_at(e.at, [this, r = e.rank]() {
          if (armed_ && cluster_.crash_mds(r)) ++injected_;
        });
      } else if (e.kind == FaultKind::Restart) {
        cluster.engine().schedule_at(e.at, [this, r = e.rank]() {
          if (armed_ && cluster_.restart_mds(r)) ++injected_;
        });
      }
    }
  }

  /// Stop injecting: quiesce must not be re-faulted by events scheduled
  /// past the workload's end.
  void disarm() { armed_ = false; }

  std::uint64_t injected() const { return injected_; }

  bool drop_heartbeat(MdsRank from, MdsRank) override {
    if (!window_active(FaultKind::HbDrop, from)) return false;
    ++injected_;
    return true;
  }
  bool duplicate_heartbeat(MdsRank from, MdsRank) override {
    if (!window_active(FaultKind::HbDup, from)) return false;
    ++injected_;
    return true;
  }
  Time extra_heartbeat_delay(MdsRank from, MdsRank) override {
    if (!armed_) return 0;
    const Time now = cluster_.engine().now();
    for (const ChaosEvent& e : sched_.events) {
      if (e.kind == FaultKind::HbDelay && e.rank == from && e.at <= now &&
          now < e.until) {
        ++injected_;
        return e.delay;
      }
    }
    return 0;
  }

 private:
  bool window_active(FaultKind kind, MdsRank rank) const {
    if (!armed_) return false;
    const Time now = cluster_.engine().now();
    for (const ChaosEvent& e : sched_.events)
      if (e.kind == kind && e.rank == rank && e.at <= now && now < e.until)
        return true;
    return false;
  }

  bool store_faulted(const std::string& oid) {
    if (!armed_) return false;
    const Time now = cluster_.engine().now();
    bool active = false;
    for (const ChaosEvent& e : sched_.events)
      if (e.kind == FaultKind::StoreFault && e.at <= now && now < e.until)
        active = true;
    if (!active) return false;
    // Stable per-oid decision (~25% of ids fail while the window is open):
    // deterministic, and a bounded window guarantees later flushes of the
    // same object eventually succeed.
    const std::uint64_t h =
        SplitMix64(sched_.seed ^ mds::hash_dentry_name(oid)).next();
    if ((h & 3) != 0) return false;
    ++injected_;
    return true;
  }

  ChaosSchedule sched_;
  cluster::MdsCluster& cluster_;
  bool armed_ = true;
  std::uint64_t injected_ = 0;
};

sim::ScenarioConfig base_config(std::uint64_t seed, bool hb_stale_guard) {
  sim::ScenarioConfig cfg;
  cfg.cluster.num_mds = kNumMds;
  cfg.cluster.seed = seed;
  cfg.cluster.bal_interval = 500 * kMsec;
  cfg.cluster.split_size = 150;
  cfg.cluster.merge_size = 10;
  cfg.cluster.hb_stale_guard = hb_stale_guard;
  cfg.retry.timeout = 2 * kSec;  // clients must survive crashed ranks
  cfg.retry.max_backoff = 4 * kSec;
  cfg.max_time = 90 * kSec;  // wedge backstop, far past the nominal ~7s
  return cfg;
}

void add_workloads(sim::Scenario& s, ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::CreateHeavy:
      // ~6.3s of shared-directory creates: drives splits and exports.
      for (int c = 0; c < 3; ++c)
        s.add_client(workloads::make_shared_create_workload(
            c, "/shared", 900, /*think=*/7000));
      break;
    case ScenarioKind::Compile:
      // Shrunken compile tree, stretched to ~6s: hotspot phases + the
      // readdir flash crowd.
      for (int c = 0; c < 2; ++c) {
        workloads::CompileOptions opt;
        opt.root = "/src" + std::to_string(c);
        opt.files_per_dir = 4;
        opt.compile_ops = 150;
        opt.read_ops = 60;
        opt.link_rounds = 2;
        opt.untar_think = 2000;
        opt.compile_think = 25000;
        opt.read_think = 8000;
        opt.link_think = 2000;
        s.add_client(workloads::make_compile_workload(c, opt));
      }
      break;
    case ScenarioKind::FaultRecovery:
      // Per-client private trees plus a baseline crash/restart of rank 1,
      // so every schedule composes with an already-degraded cluster.
      for (int c = 0; c < 3; ++c)
        s.add_client(
            workloads::make_private_create_workload(c, 900, /*think=*/7000));
      s.engine().schedule_at(2 * kSec, [&s]() { s.cluster().crash_mds(1); });
      s.engine().schedule_at(4 * kSec, [&s]() { s.cluster().restart_mds(1); });
      break;
  }
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::Crash: return "crash";
    case FaultKind::Restart: return "restart";
    case FaultKind::HbDrop: return "hb-drop";
    case FaultKind::HbDup: return "hb-dup";
    case FaultKind::HbDelay: return "hb-delay";
    case FaultKind::StoreFault: return "store-fault";
  }
  return "?";
}

std::string ChaosEvent::str() const {
  char buf[160];
  int n = std::snprintf(buf, sizeof(buf), "%s", fault_kind_name(kind));
  if (rank != mds::kNoRank)
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                       " rank=%d", rank);
  n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                     " at_us=%llu", static_cast<unsigned long long>(at));
  if (until != 0)
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                       " until_us=%llu", static_cast<unsigned long long>(until));
  if (delay != 0)
    std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                  " delay_us=%llu", static_cast<unsigned long long>(delay));
  return buf;
}

std::string ChaosSchedule::str() const {
  std::string out;
  for (const ChaosEvent& e : events) {
    if (!out.empty()) out += "; ";
    out += e.str();
  }
  return out;
}

const char* scenario_name(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::CreateHeavy: return "create-heavy";
    case ScenarioKind::Compile: return "compile";
    case ScenarioKind::FaultRecovery: return "fault-recovery";
  }
  return "?";
}

bool parse_scenario(const std::string& name, ScenarioKind& out) {
  std::string n = name;
  std::replace(n.begin(), n.end(), '_', '-');
  for (const ScenarioKind k :
       {ScenarioKind::CreateHeavy, ScenarioKind::Compile,
        ScenarioKind::FaultRecovery}) {
    if (n == scenario_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

ChaosSchedule generate_schedule(std::uint64_t seed, int num_mds,
                                int max_events) {
  // The generator's stream is decorrelated from the cluster's (which is
  // seeded with `seed` directly) by one SplitMix64 step.
  Rng rng(SplitMix64(seed).next());
  ChaosSchedule s;
  s.seed = seed;
  const int n =
      1 + static_cast<int>(rng.uniform(0, static_cast<std::uint64_t>(
                                              std::max(1, max_events) - 1)));
  for (int i = 0; i < n; ++i) {
    ChaosEvent e;
    e.kind = static_cast<FaultKind>(rng.uniform(0, 5));
    e.rank = static_cast<MdsRank>(
        rng.uniform(0, static_cast<std::uint64_t>(num_mds - 1)));
    e.at = rng.uniform(kEventFrom, kEventTo);
    switch (e.kind) {
      case FaultKind::Crash:
      case FaultKind::Restart:
        break;
      case FaultKind::HbDrop:
      case FaultKind::HbDup:
        e.until = e.at + rng.uniform(kWindowMin, kWindowMax);
        break;
      case FaultKind::HbDelay:
        e.until = e.at + rng.uniform(kWindowMin, kWindowMax);
        e.delay = rng.uniform(kDelayMin, kDelayMax);
        break;
      case FaultKind::StoreFault:
        e.rank = mds::kNoRank;
        e.until = e.at + rng.uniform(kWindowMin, kWindowMax);
        break;
    }
    s.events.push_back(e);
  }
  std::sort(s.events.begin(), s.events.end(),
            [](const ChaosEvent& a, const ChaosEvent& b) {
              return std::tie(a.at, a.kind, a.rank, a.until, a.delay) <
                     std::tie(b.at, b.kind, b.rank, b.until, b.delay);
            });
  return s;
}

RunOutcome run_schedule(ScenarioKind kind, const ChaosSchedule& schedule,
                        bool hb_stale_guard) {
  sim::Scenario s(base_config(schedule.seed, hb_stale_guard));
  s.cluster().set_balancer_all(
      [](int) { return std::make_unique<balancers::OriginalBalancer>(); });
  add_workloads(s, kind);

  ChaosInjector inj(schedule, s.cluster());
  InvariantChecker chk(s.cluster());
  s.add_probe(s.cluster().config().bal_interval,
              [&chk](Time t) { chk.check_tick(t); });

  RunOutcome out;
  out.makespan = s.run();

  // Quiesce: no further injection, every down rank restarted, and the
  // cluster drained until nothing is mid-flight. Bounded rounds so a
  // genuinely wedged cluster still fails the final checks instead of
  // spinning forever.
  inj.disarm();
  auto& cl = s.cluster();
  for (int round = 0; round < 6; ++round) {
    for (MdsRank r = 0; r < cl.num_mds(); ++r)
      if (!cl.is_up(r) && !cl.is_replaying(r)) cl.restart_mds(r);
    s.engine().run_until(s.engine().now() + 2 * kSec);
    bool settled = cl.active_migration_count() == 0 && cl.dead_letter_size() == 0;
    for (MdsRank r = 0; r < cl.num_mds(); ++r) settled &= cl.is_up(r);
    if (settled) break;
  }
  chk.check_quiesce(s.engine().now());

  out.checks = chk.checks();
  out.faults_injected = inj.injected();
  out.violated = !chk.ok();
  if (out.violated) out.first = chk.violations().front();
  return out;
}

ChaosSchedule shrink_schedule(ScenarioKind kind, const ChaosSchedule& schedule,
                              bool hb_stale_guard, std::uint64_t* runs) {
  ChaosSchedule cur = schedule;
  bool changed = true;
  while (changed && !cur.events.empty()) {
    changed = false;
    for (std::size_t i = 0; i < cur.events.size(); ++i) {
      ChaosSchedule cand = cur;
      cand.events.erase(cand.events.begin() + static_cast<std::ptrdiff_t>(i));
      if (runs != nullptr) ++*runs;
      // "Any invariant still violated" keeps the search monotone: the
      // minimal schedule may end up tripping a different invariant than
      // the original, which is fine — it is still a real reproducer.
      if (run_schedule(kind, cand, hb_stale_guard).violated) {
        cur = std::move(cand);
        changed = true;
        break;
      }
    }
  }
  return cur;
}

std::string ChaosViolation::reproducer() const {
  char buf[96];
  std::string out = "scenario=";
  out += scenario_name(scenario);
  std::snprintf(buf, sizeof(buf), " seed=%llu",
                static_cast<unsigned long long>(seed));
  out += buf;
  out += " invariant=" + invariant;
  std::snprintf(buf, sizeof(buf), " at_us=%llu events=%zu",
                static_cast<unsigned long long>(at), shrunk.events.size());
  out += buf;
  out += " schedule=[" + shrunk.str() + "]";
  out += " detail=\"" + json_escape(detail) + "\"";
  return out;
}

std::string ChaosResult::corpus() const {
  std::string out;
  for (const ChaosViolation& v : violations) {
    out += v.reproducer();
    out += '\n';
  }
  return out;
}

std::string ChaosResult::to_json() const {
  char buf[128];
  std::string out = "{";
  std::snprintf(buf, sizeof(buf),
                "\"checks\":%llu,\"faults_injected\":%llu,\"schedules\":%llu,"
                "\"shrink_runs\":%llu,\"violations\":[",
                static_cast<unsigned long long>(checks),
                static_cast<unsigned long long>(faults_injected),
                static_cast<unsigned long long>(schedules),
                static_cast<unsigned long long>(shrink_runs));
  out += buf;
  bool first = true;
  for (const ChaosViolation& v : violations) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf), "{\"at_us\":%llu,",
                  static_cast<unsigned long long>(v.at));
    out += buf;
    out += "\"detail\":\"" + json_escape(v.detail) + "\",";
    std::snprintf(buf, sizeof(buf), "\"events\":%zu,", v.shrunk.events.size());
    out += buf;
    out += "\"invariant\":\"" + json_escape(v.invariant) + "\",";
    std::snprintf(buf, sizeof(buf), "\"iteration\":%llu,",
                  static_cast<unsigned long long>(v.iteration));
    out += buf;
    std::snprintf(buf, sizeof(buf), "\"original_events\":%zu,",
                  v.original_events);
    out += buf;
    out += "\"scenario\":\"";
    out += scenario_name(v.scenario);
    out += "\",\"schedule\":\"" + json_escape(v.shrunk.str()) + "\",";
    std::snprintf(buf, sizeof(buf), "\"seed\":%llu}",
                  static_cast<unsigned long long>(v.seed));
    out += buf;
  }
  out += "]}";
  return out;
}

ChaosResult run_chaos(const ChaosConfig& cfg, obs::MetricsRegistry* metrics) {
  ChaosResult res;
  if (cfg.scenarios.empty() || cfg.iters == 0) return res;

  SplitMix64 seeder(cfg.seed);
  for (std::uint64_t iter = 0; iter < cfg.iters; ++iter) {
    const std::uint64_t sseed = seeder.next();
    if (res.violations.size() >= cfg.max_violations) break;
    const ScenarioKind kind =
        cfg.scenarios[static_cast<std::size_t>(iter % cfg.scenarios.size())];
    const ChaosSchedule sched =
        generate_schedule(sseed, kNumMds, cfg.max_events);
    const RunOutcome out = run_schedule(kind, sched, cfg.hb_stale_guard);
    ++res.schedules;
    res.checks += out.checks;
    res.faults_injected += out.faults_injected;
    if (!out.violated) continue;

    ChaosViolation v;
    v.iteration = iter;
    v.scenario = kind;
    v.seed = sseed;
    v.original_events = sched.events.size();
    v.shrunk = cfg.shrink ? shrink_schedule(kind, sched, cfg.hb_stale_guard,
                                            &res.shrink_runs)
                          : sched;
    // Re-run the minimal schedule so the reported violation describes the
    // reproducer, not the original composite.
    const RunOutcome min = run_schedule(kind, v.shrunk, cfg.hb_stale_guard);
    const RunOutcome& use = min.violated ? min : out;
    if (!min.violated) v.shrunk = sched;  // paranoia: keep a failing schedule
    v.invariant = use.first.invariant;
    v.detail = use.first.detail;
    v.at = use.first.at;
    res.violations.push_back(std::move(v));
  }

  if (metrics != nullptr) {
    metrics->counter("mantle_chaos_schedules_total",
                     "chaos schedules executed")
        .inc(res.schedules);
    metrics->counter("mantle_chaos_faults_injected_total",
                     "faults injected by chaos schedules")
        .inc(res.faults_injected);
    metrics->counter("mantle_chaos_checks_total",
                     "invariant evaluations performed")
        .inc(res.checks);
    metrics->counter("mantle_chaos_violations_total",
                     "invariant violations found")
        .inc(res.violations.size());
    metrics->counter("mantle_chaos_shrink_runs_total",
                     "re-executions spent shrinking reproducers")
        .inc(res.shrink_runs);
  }
  return res;
}

}  // namespace mantle::chaos
