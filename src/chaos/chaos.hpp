#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/invariant.hpp"
#include "common/time.hpp"
#include "mds/types.hpp"

/// \file chaos.hpp
/// Deterministic chaos engine: generates randomized fault schedules —
/// seeded crashes and restarts, heartbeat drop/duplicate/delay windows,
/// object-store fault windows, freely composed and time-jittered — runs
/// each against a real scenario (create-heavy, compile, fault-recovery)
/// with the cluster-wide InvariantChecker polling every balancer tick,
/// and delta-debugs any violating schedule down to a minimal reproducer.
///
/// Determinism is the load-bearing property. A schedule is pure data:
/// injection consults the event windows against the simulated clock and
/// draws *no* randomness of its own (store-fault decisions hash the
/// object id against the schedule seed), so removing one event from a
/// schedule leaves every other fault exactly in place. That is what makes
/// greedy event-removal shrinking faithful, and what makes two runs of
/// the same (seed, iters, scenarios) produce byte-identical reproducer
/// corpora — same guarantee, same shape as src/safety/fuzz.

namespace mantle::obs {
class MetricsRegistry;
}  // namespace mantle::obs

namespace mantle::chaos {

using mantle::mds::MdsRank;

enum class FaultKind : int {
  Crash = 0,   ///< kill an MDS at `at`
  Restart,     ///< bring an MDS back at `at` (no-op if it is not down)
  HbDrop,      ///< drop the rank's outgoing heartbeats in [at, until)
  HbDup,       ///< duplicate them in [at, until)
  HbDelay,     ///< add `delay` to them in [at, until)
  StoreFault,  ///< fail a deterministic subset of store ops in [at, until)
};

const char* fault_kind_name(FaultKind kind);

struct ChaosEvent {
  FaultKind kind = FaultKind::Crash;
  MdsRank rank = 0;  ///< target rank; kNoRank for StoreFault
  Time at = 0;       ///< instant (Crash/Restart) or window start
  Time until = 0;    ///< window end; 0 for instant kinds
  Time delay = 0;    ///< HbDelay only: extra latency

  bool operator==(const ChaosEvent&) const = default;

  /// Canonical rendering, e.g. "hb-delay rank=1 at_us=3000000
  /// until_us=5000000 delay_us=900000".
  std::string str() const;
};

struct ChaosSchedule {
  std::uint64_t seed = 0;  ///< seeds the simulation *and* store-fault hashing
  std::vector<ChaosEvent> events;

  /// Canonical one-line rendering: events joined with "; ".
  std::string str() const;
};

enum class ScenarioKind : int { CreateHeavy = 0, Compile, FaultRecovery };

const char* scenario_name(ScenarioKind kind);
/// Accepts "create-heavy", "compile", "fault-recovery" ('_' tolerated for
/// '-'). Returns false on anything else.
bool parse_scenario(const std::string& name, ScenarioKind& out);

struct ChaosConfig {
  std::uint64_t seed = 1;
  /// Schedules to run, round-robined across `scenarios`.
  std::uint64_t iters = 200;
  std::vector<ScenarioKind> scenarios = {
      ScenarioKind::CreateHeavy, ScenarioKind::Compile,
      ScenarioKind::FaultRecovery};
  /// Events per generated schedule: uniform in [1, max_events].
  int max_events = 5;
  /// Satellite toggle: run with the stale-heartbeat guard disabled to
  /// reintroduce the seeded bug the shrinker must rediscover.
  bool hb_stale_guard = true;
  /// Stop after this many violations (each one is shrunk, which costs
  /// re-executions).
  std::size_t max_violations = 8;
  /// Delta-debug violating schedules to minimal reproducers.
  bool shrink = true;
};

/// One violating schedule, shrunk to a minimal reproducer.
struct ChaosViolation {
  std::uint64_t iteration = 0;
  ScenarioKind scenario = ScenarioKind::CreateHeavy;
  std::uint64_t seed = 0;  ///< the schedule seed (reproduces the run alone)
  std::string invariant;
  std::string detail;
  Time at = 0;
  std::size_t original_events = 0;
  ChaosSchedule shrunk;

  /// Canonical one-line reproducer (the corpus line / CI artifact).
  std::string reproducer() const;
};

struct ChaosResult {
  std::uint64_t schedules = 0;       ///< schedules executed (incl. shrinking)
  std::uint64_t faults_injected = 0;
  std::uint64_t checks = 0;          ///< invariant evaluations
  std::uint64_t shrink_runs = 0;     ///< re-executions spent shrinking
  std::vector<ChaosViolation> violations;

  bool ok() const { return violations.empty(); }

  /// One reproducer line per violation, in discovery order. Byte-identical
  /// across runs with the same config.
  std::string corpus() const;

  /// Deterministic JSON (name-ordered keys).
  std::string to_json() const;
};

/// Outcome of one schedule against one scenario (exposed for tests).
struct RunOutcome {
  bool violated = false;
  Violation first;  ///< first violation when violated
  std::uint64_t checks = 0;
  std::uint64_t faults_injected = 0;
  Time makespan = 0;
};

/// Generate one randomized schedule. Pure function of its arguments.
ChaosSchedule generate_schedule(std::uint64_t seed, int num_mds,
                                int max_events);

/// Run one schedule through one scenario: inject, poll invariants every
/// balancer tick, quiesce (restart every down rank, drain), final checks.
RunOutcome run_schedule(ScenarioKind kind, const ChaosSchedule& schedule,
                        bool hb_stale_guard = true);

/// Greedy event-removal delta debugging to a fixpoint: keep dropping any
/// single event whose removal still violates some invariant. `runs` (if
/// non-null) accumulates the re-executions spent.
ChaosSchedule shrink_schedule(ScenarioKind kind, const ChaosSchedule& schedule,
                              bool hb_stale_guard = true,
                              std::uint64_t* runs = nullptr);

/// Run the full sweep. `metrics` (optional) receives the
/// mantle_chaos_*_total counters.
ChaosResult run_chaos(const ChaosConfig& cfg = {},
                      obs::MetricsRegistry* metrics = nullptr);

}  // namespace mantle::chaos
