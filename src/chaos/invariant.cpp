#include "chaos/invariant.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace mantle::chaos {

namespace {

using mantle::mds::DirFragId;
using mantle::mds::MdsRank;
using mantle::mds::MetaOp;

/// Collecting more than this per run is noise: the runner only reports
/// the first violation and the shrinker only needs "still failing".
constexpr std::size_t kMaxViolations = 16;

constexpr MetaOp kAllOps[] = {MetaOp::IRD, MetaOp::IWR, MetaOp::READDIR,
                              MetaOp::FETCH, MetaOp::STORE};

const char* meta_op_name(MetaOp op) {
  switch (op) {
    case MetaOp::IRD: return "ird";
    case MetaOp::IWR: return "iwr";
    case MetaOp::READDIR: return "readdir";
    case MetaOp::FETCH: return "fetch";
    case MetaOp::STORE: return "store";
  }
  return "?";
}

}  // namespace

InvariantChecker::InvariantChecker(cluster::MdsCluster& c) : c_(c) {
  const auto n = static_cast<std::size_t>(c.num_mds());
  last_hb_.assign(n, std::vector<std::pair<std::uint64_t, Time>>(n, {0, 0}));
  observer_epoch_.assign(n, 0);
}

void InvariantChecker::fail(Time now, const char* invariant,
                            std::string detail) {
  if (violations_.size() >= kMaxViolations) return;
  c_.trace().event(now, obs::EventKind::InvariantViolation, -1, -1,
                   std::string(invariant) + ": " + detail);
  violations_.push_back({now, invariant, std::move(detail)});
}

void InvariantChecker::check_tick(Time now) {
  check_cover(now);
  check_migrations(now);
  check_heartbeats(now);
  check_heat(now);
}

void InvariantChecker::check_quiesce(Time now) {
  check_tick(now);

  ++checks_;
  for (MdsRank r = 0; r < c_.num_mds(); ++r) {
    if (!c_.is_up(r))
      fail(now, "quiesce-rank-down",
           "rank " + std::to_string(r) + " not serving after quiesce");
  }
  ++checks_;
  if (c_.active_migration_count() != 0) {
    std::string detail;
    for (const auto& m : c_.active_migration_records())
      detail += m.frag.str() + " " + std::to_string(m.from) + "->" +
                std::to_string(m.to) + " ";
    fail(now, "quiesce-migration-open",
         std::to_string(c_.active_migration_count()) +
             " exports still in flight: " + detail);
  }
  ++checks_;
  if (c_.dead_letter_size() != 0)
    fail(now, "dead-letter-stuck",
         std::to_string(c_.dead_letter_size()) +
             " requests still parked after every rank recovered");
}

void InvariantChecker::check_cover(Time now) {
  const auto& ns = c_.ns();
  const auto& roots = c_.subtree_roots();

  // Every subtree root must name a live dirfrag owned by a valid rank.
  ++checks_;
  for (const auto& [rf, rank] : roots) {
    if (ns.frag(rf) == nullptr)
      fail(now, "dangling-subtree-root", "root " + rf.str() + " has no frag");
    if (rank < 0 || rank >= c_.num_mds())
      fail(now, "dangling-subtree-root",
           "root " + rf.str() + " owned by invalid rank " +
               std::to_string(rank));
  }

  // Walk every directory reachable from the root. Orphaned directories
  // (present in the namespace but unreachable) are lost metadata.
  const auto dirs = ns.subtree_dirs(ns.root());
  ++checks_;
  if (dirs.size() != ns.num_dirs())
    fail(now, "namespace-disconnected",
         std::to_string(ns.num_dirs() - dirs.size()) +
             " directories unreachable from the root");

  for (const auto ino : dirs) {
    const auto* d = ns.dir(ino);
    if (d == nullptr) continue;

    // The directory's fragments must tile the 32-bit hash space exactly:
    // sorted by prefix value, each starts where the previous ended.
    ++checks_;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> spans;  // [start, end)
    spans.reserve(d->frags.size());
    for (const auto& [f, df] : d->frags)
      spans.emplace_back(f.value(),
                         static_cast<std::uint64_t>(f.value()) +
                             (std::uint64_t{1} << (32 - f.bits())));
    std::sort(spans.begin(), spans.end());
    std::uint64_t expect = 0;
    bool tiled = true;
    for (const auto& [lo, hi] : spans) {
      if (lo != expect) {
        tiled = false;
        break;
      }
      expect = hi;
    }
    if (!tiled || expect != (std::uint64_t{1} << 32))
      fail(now, "dirfrag-partition",
           "dir " + std::to_string(ino) + " fragments do not tile the hash " +
               "space (" + std::to_string(d->frags.size()) + " frags)");

    // Auth-unique cover: the innermost subtree root containing each frag
    // decides its authority, and the frag's own annotation must agree.
    // Frags under an in-flight 2PC export are mid-handover — the subtree
    // map and the annotation legitimately disagree until commit/abort —
    // so they are asserted via migration liveness instead.
    for (const auto& [f, df] : d->frags) {
      ++checks_;
      const DirFragId id{ino, f};
      if (c_.is_frozen(id)) continue;
      bool found = false;
      DirFragId inner;
      for (const auto& [rf, rank] : roots) {
        if (!c_.frag_contains(rf, id)) continue;
        // Containing roots are nested, so "contained by the current
        // innermost" picks the unique deepest one.
        if (!found || c_.frag_contains(inner, rf)) inner = rf;
        found = true;
      }
      if (!found) {
        fail(now, "uncovered-dirfrag",
             "frag " + id.str() + " is covered by no subtree root");
        continue;
      }
      const MdsRank expected = roots.at(inner);
      const MdsRank actual = df.auth == mds::kNoRank ? 0 : df.auth;
      if (actual != expected)
        fail(now, "auth-mismatch",
             "frag " + id.str() + " auth=" + std::to_string(actual) +
                 " but innermost root " + inner.str() + " is owned by " +
                 std::to_string(expected));
    }
  }
}

void InvariantChecker::check_migrations(Time now) {
  ++checks_;
  for (const auto& m : c_.active_migration_records()) {
    // A crash aborts the migrations of the dead rank in the same event,
    // so an in-flight export with a dead end is orphaned 2PC state.
    if (!c_.is_up(m.from) && !c_.is_replaying(m.from))
      fail(now, "orphaned-migration",
           "export " + m.frag.str() + " " + std::to_string(m.from) + "->" +
               std::to_string(m.to) + " has a dead exporter");
    if (!c_.is_up(m.to) && !c_.is_replaying(m.to))
      fail(now, "orphaned-migration",
           "export " + m.frag.str() + " " + std::to_string(m.from) + "->" +
               std::to_string(m.to) + " has a dead importer");
  }
}

void InvariantChecker::check_heartbeats(Time now) {
  for (MdsRank o = 0; o < c_.num_mds(); ++o) {
    const auto oi = static_cast<std::size_t>(o);
    const auto& hb = c_.node(o).heartbeats();
    // An observer that crashed since the last poll gets fresh baselines:
    // its stored table may have been rebuilt.
    if (observer_epoch_[oi] != c_.crash_epoch(o)) {
      observer_epoch_[oi] = c_.crash_epoch(o);
      for (auto& p : last_hb_[oi]) p = {0, 0};
    }
    for (MdsRank s = 0; s < c_.num_mds(); ++s) {
      if (s == o) continue;
      const auto si = static_cast<std::size_t>(s);
      const auto& cur = hb[si];
      auto& last = last_hb_[oi][si];
      ++checks_;
      if (cur.epoch < last.first ||
          (cur.epoch == last.first && cur.sent_at < last.second)) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "mds%d's view of mds%d regressed: epoch %llu@%llu -> "
                      "%llu@%llu",
                      o, s, static_cast<unsigned long long>(last.first),
                      static_cast<unsigned long long>(last.second),
                      static_cast<unsigned long long>(cur.epoch),
                      static_cast<unsigned long long>(cur.sent_at));
        fail(now, "hb-regressed", buf);
      }
      ++checks_;
      if (cur.epoch > c_.crash_epoch(s)) {
        fail(now, "hb-epoch-future",
             "mds" + std::to_string(o) + " holds epoch " +
                 std::to_string(cur.epoch) + " from mds" + std::to_string(s) +
                 " whose incarnation is " +
                 std::to_string(c_.crash_epoch(s)));
      }
      last = {cur.epoch, cur.sent_at};
    }
  }
}

void InvariantChecker::check_heat(Time now) {
  const auto& ns = c_.ns();
  const auto dirs = ns.subtree_dirs(ns.root());
  const auto& rate = ns.decay_rate();
  for (const MetaOp op : kAllOps) {
    ++checks_;
    double frag_sum = 0.0;
    for (const auto ino : dirs) {
      const auto* d = ns.dir(ino);
      if (d == nullptr) continue;
      for (const auto& [f, df] : d->frags) frag_sum += df.pop.get(op, now, rate);
    }
    const double nested = ns.nested_pop(ns.root(), op, now);
    // Linear decay + proportional split/merge conserve heat exactly in
    // real arithmetic; the tolerance only absorbs floating-point error.
    const double tol = 1e-6 * std::max(1.0, std::abs(nested));
    if (std::abs(frag_sum - nested) > tol) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "%s heat: sum(frags)=%.9g but nested(root)=%.9g",
                    meta_op_name(op), frag_sum, nested);
      fail(now, "heat-not-conserved", buf);
    }
  }
}

}  // namespace mantle::chaos
