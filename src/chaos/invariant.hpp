#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/time.hpp"

/// \file invariant.hpp
/// Cluster-wide invariant checking for chaos runs. The checker is polled
/// every balancer tick (and once more after quiesce) and asserts the
/// properties the rest of the system silently relies on:
///
///   - auth-unique cover: every dirfrag of every directory reachable from
///     the root is covered by exactly one innermost subtree root, and its
///     own auth annotation agrees with that root's owner — no lost and no
///     doubly-owned dirfrags across crash/takeover/replay;
///   - frag partition: each directory's fragments tile the 32-bit
///     dentry-hash space exactly (no gap, no overlap), however many
///     splits, merges and replays happened;
///   - migration liveness: both ends of every in-flight 2PC export are
///     alive — a crash must tear down its migrations in the same event,
///     so no orphaned export state is ever observable;
///   - heartbeat monotonicity: the (epoch, sent_at) pair an observer
///     stores per sender never regresses — exactly what
///     ClusterConfig::hb_stale_guard enforces, so running with the guard
///     disabled is the seeded bug the chaos shrinker must rediscover;
///   - heat conservation: summed per-fragment popularity equals the
///     root's hierarchically accumulated nested popularity for every op
///     class (splits, merges, migrations and takeovers only move heat,
///     never mint or lose it);
///   - quiesce: once every rank has been restarted and the cluster
///     drained, all ranks serve, no migration is open and the dead-letter
///     queue has drained.
///
/// Violations are recorded locally and mirrored into the cluster's trace
/// sink as InvariantViolation events, so a failing timeline shows *where*
/// the property broke relative to the injected faults.

namespace mantle::chaos {

using mantle::Time;

struct Violation {
  Time at = 0;
  std::string invariant;  ///< kebab-case id, e.g. "hb-regressed"
  std::string detail;     ///< deterministic description of the breakage
};

class InvariantChecker {
 public:
  explicit InvariantChecker(cluster::MdsCluster& c);

  /// Invariants that must hold at every balancer tick.
  void check_tick(Time now);

  /// End-of-run invariants: call after every rank has been restarted and
  /// the engine drained. Runs the tick invariants too.
  void check_quiesce(Time now);

  bool ok() const { return violations_.empty(); }
  const std::vector<Violation>& violations() const { return violations_; }
  /// Individual invariant evaluations performed (for reporting).
  std::uint64_t checks() const { return checks_; }

 private:
  void fail(Time now, const char* invariant, std::string detail);
  void check_cover(Time now);
  void check_migrations(Time now);
  void check_heartbeats(Time now);
  void check_heat(Time now);

  cluster::MdsCluster& c_;
  std::vector<Violation> violations_;
  std::uint64_t checks_ = 0;

  /// Last (epoch, sent_at) seen per (observer, sender); regression = bug.
  std::vector<std::vector<std::pair<std::uint64_t, Time>>> last_hb_;
  /// Observer incarnations at the previous poll: when an observer itself
  /// crashes its stored heartbeat table may legitimately reset, so its
  /// baselines are forgiven once per crash.
  std::vector<std::uint64_t> observer_epoch_;
};

}  // namespace mantle::chaos
