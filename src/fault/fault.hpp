#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"

/// \file fault.hpp
/// Fault injection for the simulated cluster. A FaultPlan is a declarative
/// description of everything that goes wrong during a run — MDS crashes
/// and restarts at fixed simulated times, probabilistic heartbeat
/// drop/duplication/extra delay, and transient object-store op failures —
/// and a FaultInjector arms it against a cluster. All randomness comes
/// from the plan's own seed, so (seed, plan) -> identical fault sequence,
/// which keeps fault runs as replayable as fault-free ones.
///
/// The injector deliberately lives *outside* the cluster: the cluster
/// exposes mechanisms (crash_mds/restart_mds, the NetworkFaults interface,
/// the ObjectStore fault hook) and this layer decides when to pull them.

namespace mantle::fault {

using mantle::Rng;
using mantle::Time;
using mantle::mds::MdsRank;

/// Kill one MDS at a simulated time (queue + in-service request lost,
/// in-flight migrations aborted, takeover per ClusterConfig).
struct CrashEvent {
  Time at = 0;
  MdsRank rank = mantle::mds::kNoRank;
};

/// Bring a crashed MDS back at a simulated time; it replays its journal
/// before serving again.
struct RestartEvent {
  Time at = 0;
  MdsRank rank = mantle::mds::kNoRank;
};

struct FaultPlan {
  std::vector<CrashEvent> crashes;
  std::vector<RestartEvent> restarts;

  // -- heartbeat faults (evaluated per heartbeat send) ----------------------
  double hb_drop_prob = 0.0;       // message silently lost
  double hb_duplicate_prob = 0.0;  // delivered twice
  double hb_delay_prob = 0.0;      // extra delay on top of the normal path
  Time hb_delay_max = 0;           // extra delay uniform in (0, max]

  // -- transient object-store failures --------------------------------------
  double store_fail_prob = 0.0;    // probability an op fails (not applied)
  Time store_fail_from = 0;        // faults active in [from, until)
  Time store_fail_until = 0;       // 0 = no upper bound

  std::uint64_t seed = 42;         // injector's private rng stream
};

/// What the injector actually did, for assertions and reports.
struct FaultCounters {
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t hb_dropped = 0;
  std::uint64_t hb_duplicated = 0;
  std::uint64_t hb_delayed = 0;
  std::uint64_t store_faults = 0;
};

class FaultInjector : public cluster::NetworkFaults {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Install this injector on a cluster: registers the NetworkFaults
  /// interface and the ObjectStore fault hook, and schedules every crash
  /// and restart in the plan on the cluster's engine. Call once, before
  /// running the engine. The injector must outlive the cluster's run.
  void arm(cluster::MdsCluster& cluster);

  const FaultPlan& plan() const { return plan_; }
  /// Aggregate view of everything fired so far. In sharded mode the
  /// heartbeat tallies are folded from the per-sender lanes.
  const FaultCounters& counters() const;

  // -- NetworkFaults ---------------------------------------------------------
  bool drop_heartbeat(MdsRank from, MdsRank to) override;
  bool duplicate_heartbeat(MdsRank from, MdsRank to) override;
  Time extra_heartbeat_delay(MdsRank from, MdsRank to) override;

 private:
  /// One independent heartbeat-fault stream per sending rank. Under the
  /// sharded engine the NetworkFaults hooks run concurrently from phase-A
  /// worker threads, but always on the sender's own shard — giving each
  /// sender its own rng and counters makes the hooks race-free *and*
  /// makes the fault sequence a function of the plan alone, independent
  /// of shard/thread count (a shared stream would interleave draws in
  /// schedule order, which sharding changes).
  struct alignas(64) SenderLane {
    explicit SenderLane(std::uint64_t seed) noexcept : rng(seed) {}
    Rng rng;
    FaultCounters counters;
  };

  Rng& hb_rng(MdsRank from);
  FaultCounters& hb_counters(MdsRank from);
  bool store_faults_active() const;
  /// Record one fired fault in the cluster's metrics + trace timeline.
  void note_fault(const char* what, MdsRank rank);

  FaultPlan plan_;
  Rng rng_;
  FaultCounters counters_;
  std::vector<SenderLane> lanes_;       // non-empty only in sharded mode
  mutable FaultCounters folded_;        // counters() scratch when sharded
  cluster::MdsCluster* cluster_ = nullptr;
};

}  // namespace mantle::fault
