#include "fault/fault.hpp"

#include "common/log.hpp"

namespace mantle::fault {

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {}

void FaultInjector::arm(cluster::MdsCluster& cluster) {
  cluster_ = &cluster;
  cluster.set_network_faults(this);

  if (plan_.store_fail_prob > 0.0) {
    // The store hook consumes a dedicated rng fork so that store-op volume
    // (which varies wildly with workload) does not perturb the heartbeat
    // fault stream.
    cluster.object_store().set_fault_hook(
        [this, store_rng = rng_.fork()](store::StoreOp,
                                        const std::string&) mutable {
          if (!store_faults_active()) return false;
          if (store_rng.next_double() >= plan_.store_fail_prob) return false;
          ++counters_.store_faults;
          return true;
        });
  }

  for (const CrashEvent& c : plan_.crashes) {
    cluster.engine().schedule_at(c.at, [this, c]() {
      if (cluster_->crash_mds(c.rank)) {
        ++counters_.crashes;
        note_fault("crash", c.rank);
      }
    });
  }
  for (const RestartEvent& r : plan_.restarts) {
    cluster.engine().schedule_at(r.at, [this, r]() {
      if (cluster_->restart_mds(r.rank)) {
        ++counters_.restarts;
        note_fault("restart", r.rank);
      }
    });
  }
}

void FaultInjector::note_fault(const char* what, MdsRank rank) {
  if (cluster_ == nullptr) return;
  cluster_->metrics()
      .counter("faults_injected_total", "faults the injector actually fired")
      .inc();
  cluster_->trace().event(cluster_->engine().now(),
                          obs::EventKind::FaultInjected, rank, -1, what);
}

bool FaultInjector::store_faults_active() const {
  const Time now = cluster_->engine().now();
  if (now < plan_.store_fail_from) return false;
  return plan_.store_fail_until == 0 || now < plan_.store_fail_until;
}

bool FaultInjector::drop_heartbeat(MdsRank, MdsRank) {
  if (plan_.hb_drop_prob <= 0.0 ||
      rng_.next_double() >= plan_.hb_drop_prob)
    return false;
  ++counters_.hb_dropped;
  return true;
}

bool FaultInjector::duplicate_heartbeat(MdsRank, MdsRank) {
  if (plan_.hb_duplicate_prob <= 0.0 ||
      rng_.next_double() >= plan_.hb_duplicate_prob)
    return false;
  ++counters_.hb_duplicated;
  return true;
}

Time FaultInjector::extra_heartbeat_delay(MdsRank, MdsRank) {
  if (plan_.hb_delay_prob <= 0.0 || plan_.hb_delay_max <= 0 ||
      rng_.next_double() >= plan_.hb_delay_prob)
    return 0;
  ++counters_.hb_delayed;
  return 1 + static_cast<Time>(
                 rng_.next_double() *
                 static_cast<double>(plan_.hb_delay_max - 1));
}

}  // namespace mantle::fault
