#include "fault/fault.hpp"

#include "common/log.hpp"

namespace mantle::fault {

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {}

void FaultInjector::arm(cluster::MdsCluster& cluster) {
  cluster_ = &cluster;
  cluster.set_network_faults(this);

  if (cluster.shard_runtime() != nullptr) {
    // Sharded engine: heartbeat hooks fire from phase-A workers. Build
    // one lane per sending rank, each with a seed derived from the plan
    // seed alone so the stream is independent of shard/thread count.
    lanes_.reserve(static_cast<std::size_t>(cluster.num_mds()));
    for (MdsRank r = 0; r < cluster.num_mds(); ++r) {
      lanes_.emplace_back(plan_.seed ^
                          (0x9e3779b97f4a7c15ULL *
                           (static_cast<std::uint64_t>(r) + 1)));
    }
  }

  if (plan_.store_fail_prob > 0.0) {
    // The store hook consumes a dedicated rng fork so that store-op volume
    // (which varies wildly with workload) does not perturb the heartbeat
    // fault stream.
    cluster.object_store().set_fault_hook(
        [this, store_rng = rng_.fork()](store::StoreOp,
                                        const std::string&) mutable {
          if (!store_faults_active()) return false;
          if (store_rng.next_double() >= plan_.store_fail_prob) return false;
          ++counters_.store_faults;
          return true;
        });
  }

  for (const CrashEvent& c : plan_.crashes) {
    cluster.sched_at(c.at, [this, c]() {
      if (cluster_->crash_mds(c.rank)) {
        ++counters_.crashes;
        note_fault("crash", c.rank);
      }
    });
  }
  for (const RestartEvent& r : plan_.restarts) {
    cluster.sched_at(r.at, [this, r]() {
      if (cluster_->restart_mds(r.rank)) {
        ++counters_.restarts;
        note_fault("restart", r.rank);
      }
    });
  }
}

const FaultCounters& FaultInjector::counters() const {
  if (lanes_.empty()) return counters_;
  folded_ = counters_;  // crashes/restarts/store_faults live serially here
  for (const SenderLane& lane : lanes_) {
    folded_.hb_dropped += lane.counters.hb_dropped;
    folded_.hb_duplicated += lane.counters.hb_duplicated;
    folded_.hb_delayed += lane.counters.hb_delayed;
  }
  return folded_;
}

Rng& FaultInjector::hb_rng(MdsRank from) {
  if (lanes_.empty()) return rng_;
  return lanes_[static_cast<std::size_t>(from)].rng;
}

FaultCounters& FaultInjector::hb_counters(MdsRank from) {
  if (lanes_.empty()) return counters_;
  return lanes_[static_cast<std::size_t>(from)].counters;
}

void FaultInjector::note_fault(const char* what, MdsRank rank) {
  if (cluster_ == nullptr) return;
  cluster_->metrics()
      .counter("faults_injected_total", "faults the injector actually fired")
      .inc();
  cluster_->trace().event(cluster_->sim_now(),
                          obs::EventKind::FaultInjected, rank, -1, what);
}

bool FaultInjector::store_faults_active() const {
  const Time now = cluster_->sim_now();
  if (now < plan_.store_fail_from) return false;
  return plan_.store_fail_until == 0 || now < plan_.store_fail_until;
}

bool FaultInjector::drop_heartbeat(MdsRank from, MdsRank) {
  if (plan_.hb_drop_prob <= 0.0 ||
      hb_rng(from).next_double() >= plan_.hb_drop_prob)
    return false;
  ++hb_counters(from).hb_dropped;
  return true;
}

bool FaultInjector::duplicate_heartbeat(MdsRank from, MdsRank) {
  if (plan_.hb_duplicate_prob <= 0.0 ||
      hb_rng(from).next_double() >= plan_.hb_duplicate_prob)
    return false;
  ++hb_counters(from).hb_duplicated;
  return true;
}

Time FaultInjector::extra_heartbeat_delay(MdsRank from, MdsRank) {
  if (plan_.hb_delay_prob <= 0.0 || plan_.hb_delay_max <= 0 ||
      hb_rng(from).next_double() >= plan_.hb_delay_prob)
    return 0;
  Rng& r = hb_rng(from);
  ++hb_counters(from).hb_delayed;
  return 1 + static_cast<Time>(
                 r.next_double() *
                 static_cast<double>(plan_.hb_delay_max - 1));
}

}  // namespace mantle::fault
