/// \file mantle_stat.cpp
/// `mantle-stat` — trace analytics over observability dumps.
///
/// Runs the obs/analyze engine over a directory of `*.trace.json` dumps
/// (as written by the bench harnesses under MANTLE_OBS_DIR), or over a
/// scenario simulated inline, and prints the per-run report. Under
/// --check the exit code is the number of distinct tripped anomaly
/// detectors, so CI can gate on "no ping-pong, no thrash, no stuck
/// exports, no dead-letter leaks" with a single invocation.
///
///   mantle-stat --dir obs-dumps                # tables for every dump
///   mantle-stat --dir obs-dumps --check        # CI gate
///   mantle-stat --dir obs-dumps --json         # one JSON document
///   mantle-stat --dir obs-dumps --write-reports  # <stem>.analysis.json
///   mantle-stat --scenario plain --seed 7      # no dumps needed
///   mantle-stat --shadow run.trace.json my.policy   # injection gate
///   mantle-stat --fuzz --seed 1 --iters 10000       # hook-input fuzzer
///   mantle-stat --chaos --seed 1 --iters 2000       # chaos sweep
///   mantle-stat --explain obs-dumps --tick 3 --rank 0  # decision narratives
///   mantle-stat --whatif obs-dumps adaptable        # candidate-policy diff
///
/// Exit codes (consolidated across subcommands; see
/// docs/OBSERVABILITY.md):
///   0   success / nothing tripped / no diffs
///   1-63  count of tripped detectors (--check), fuzz failures (--fuzz)
///         or what-if decision diffs (--whatif), capped at 63
///   64  usage error
///   65  policy rejected (--shadow verdict, or an invalid --whatif policy)
///   66  missing/empty input, or a chaos invariant violation (--chaos)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "balancers/builtin.hpp"
#include "chaos/chaos.hpp"
#include "common/log.hpp"
#include "core/mantle.hpp"
#include "fault/fault.hpp"
#include "obs/analyze.hpp"
#include "obs/provenance.hpp"
#include "safety/fuzz.hpp"
#include "safety/shadow.hpp"
#include "safety/whatif.hpp"
#include "sim/scenario.hpp"
#include "workloads/create_heavy.hpp"

namespace {

constexpr int kExitUsage = 64;         // EX_USAGE
constexpr int kExitShadowReject = 65;  // EX_DATAERR: policy must not inject
constexpr int kExitNoInput = 66;       // EX_NOINPUT
constexpr int kExitCheckCap = 63;

struct Options {
  std::string dir;
  std::string scenario;
  std::string shadow_trace;   // --shadow TRACE POLICY
  std::string shadow_policy;
  std::string explain_dir;    // --explain DIR
  std::string whatif_dir;     // --whatif DIR POLICY
  std::string whatif_policy;
  std::int64_t tick = -1;     // --tick N (explain filter)
  int rank = -1;              // --rank R (explain filter)
  std::string repro_out;      // --repro-out FILE (fuzz/chaos reproducer corpus)
  bool fuzz = false;
  bool chaos = false;
  bool no_stale_guard = false;  // --chaos: reintroduce the seeded hb bug
  bool quick = false;
  std::uint64_t iters = 0;  // 0 = default for the mode
  std::uint64_t seed = 7;
  bool json = false;
  bool check = false;
  bool write_reports = false;
  mantle::obs::AnalyzeConfig cfg;
};

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: mantle-stat [--dir DIR] [--scenario plain|faulty] [--seed N]\n"
      "                   [--tick-ms N] [--json] [--check] [--write-reports]\n"
      "       mantle-stat --shadow TRACE POLICY [--json]\n"
      "       mantle-stat --fuzz [--seed N] [--iters K] [--quick]\n"
      "                   [--repro-out FILE] [--json]\n"
      "       mantle-stat --chaos [--seed N] [--iters K] [--quick]\n"
      "                   [--scenario LIST] [--no-stale-guard]\n"
      "                   [--repro-out FILE] [--json]\n"
      "       mantle-stat --explain DIR [--tick N] [--rank R]\n"
      "       mantle-stat --whatif DIR POLICY [--json]\n"
      "\n"
      "Analyzes Mantle observability dumps (<stem>.trace.json +\n"
      "<stem>.metrics.json pairs) or an inline scenario. DIR defaults to\n"
      "$MANTLE_OBS_DIR. With --check the exit code is the number of\n"
      "distinct tripped anomaly detectors (ping-pong, thrash,\n"
      "stuck-export, dead-letter-leak).\n"
      "\n"
      "--shadow replays the recorded TRACE against POLICY (a builtin name:\n"
      "original, greedy, greedy_even, fill_spill, adaptable; or a policy\n"
      "file with [when]/[where]/... sections) in a sandbox and runs the\n"
      "anomaly detectors over the decisions it would have made; exit 0 if\n"
      "the policy may be injected, 65 if it must not be.\n"
      "\n"
      "--fuzz runs the deterministic hook-input fuzzer (default 10000\n"
      "iterations; --quick = 800); the exit code is the number of shrunk\n"
      "invariant violations, written to --repro-out if given.\n"
      "\n"
      "--chaos runs the deterministic chaos engine: randomized fault\n"
      "schedules (crash/restart, heartbeat drop/dup/delay windows, store\n"
      "faults) against simulated scenarios with cluster-wide invariant\n"
      "checking every tick; violating schedules are delta-debugged to\n"
      "minimal reproducers (--repro-out). --scenario takes a comma list of\n"
      "create-heavy,compile,fault-recovery (default: all three, round-\n"
      "robin); --iters is the total schedule count (default 300, --quick\n"
      "60). --no-stale-guard disables the stale-heartbeat guard to\n"
      "reintroduce the seeded bug. Exit 66 on any violation.\n"
      "\n"
      "--explain renders human-readable narratives for every decision in\n"
      "DIR's <stem>.provenance.json dumps (the sibling trace resolves each\n"
      "shipment to committed/aborted). --tick/--rank restrict the output.\n"
      "\n"
      "--whatif replays the recorded hook inputs of DIR's provenance dumps\n"
      "through POLICY (same builtin names / policy files as --shadow) and\n"
      "diffs its when/where/howmuch decisions against the recorded run;\n"
      "the exit code is the diff count (capped at 63), 65 for an invalid\n"
      "policy.\n"
      "\n"
      "Exit codes: 0 ok; 1-63 tripped detectors / fuzz failures / what-if\n"
      "diffs; 64 usage; 65 policy rejected; 66 missing input or chaos\n"
      "violation.\n");
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

struct Analyzed {
  std::string stem;  // dump basename without .trace.json
  mantle::obs::Report report;
};

/// Inline scenarios, mirroring the reproducibility suite's setups: a
/// clean 3-MDS run and one with a crash/restart plus heartbeat faults.
mantle::obs::Report run_inline(const std::string& name, std::uint64_t seed,
                               const mantle::obs::AnalyzeConfig& acfg) {
  namespace sim = mantle::sim;
  using mantle::kMinute;
  using mantle::kSec;

  sim::ScenarioConfig cfg;
  cfg.cluster.num_mds = 3;
  cfg.cluster.seed = seed;
  cfg.cluster.bal_interval = kSec;
  cfg.cluster.split_size = 300;
  cfg.max_time = 2 * kMinute;
  std::unique_ptr<mantle::fault::FaultInjector> inj;
  if (name == "faulty") {
    cfg.cluster.laggy_factor = 3.0;
    cfg.retry.timeout = 2 * kSec;
    cfg.max_time = 3 * kMinute;
  }
  sim::Scenario s(cfg);
  s.cluster().set_balancer_all([](int) {
    return std::make_unique<mantle::balancers::OriginalBalancer>();
  });
  for (int c = 0; c < 3; ++c)
    s.add_client(mantle::workloads::make_shared_create_workload(
        c, "/shared", /*files=*/4000, /*think=*/200));
  if (name == "faulty") {
    mantle::fault::FaultPlan plan;
    plan.seed = seed;
    plan.crashes.push_back({kSec, 1});
    plan.restarts.push_back({2 * kSec, 1});
    plan.hb_drop_prob = 0.05;
    plan.hb_duplicate_prob = 0.02;
    inj = std::make_unique<mantle::fault::FaultInjector>(plan);
    inj->arm(s.cluster());
  }
  s.run();
  const auto counters =
      mantle::obs::parse_metrics_counters(s.cluster().metrics().to_json());
  return mantle::obs::analyze(s.cluster().trace(), acfg, &counters);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (const char* env = std::getenv("MANTLE_OBS_DIR");
      env != nullptr && *env != '\0')
    opt.dir = env;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mantle-stat: %s needs a value\n", flag);
        std::exit(kExitUsage);
      }
      return argv[++i];
    };
    if (a == "--dir") {
      opt.dir = value("--dir");
    } else if (a == "--scenario") {
      opt.scenario = value("--scenario");
    } else if (a == "--shadow") {
      opt.shadow_trace = value("--shadow");
      opt.shadow_policy = value("--shadow");
    } else if (a == "--explain") {
      opt.explain_dir = value("--explain");
    } else if (a == "--whatif") {
      opt.whatif_dir = value("--whatif");
      opt.whatif_policy = value("--whatif");
    } else if (a == "--tick") {
      opt.tick = std::strtoll(value("--tick"), nullptr, 10);
    } else if (a == "--rank") {
      opt.rank = static_cast<int>(std::strtol(value("--rank"), nullptr, 10));
    } else if (a == "--fuzz") {
      opt.fuzz = true;
    } else if (a == "--chaos") {
      opt.chaos = true;
    } else if (a == "--no-stale-guard") {
      opt.no_stale_guard = true;
    } else if (a == "--quick") {
      opt.quick = true;
    } else if (a == "--iters") {
      opt.iters = std::strtoull(value("--iters"), nullptr, 10);
    } else if (a == "--repro-out") {
      opt.repro_out = value("--repro-out");
    } else if (a == "--seed") {
      opt.seed = std::strtoull(value("--seed"), nullptr, 10);
    } else if (a == "--tick-ms") {
      opt.cfg.tick =
          std::strtoull(value("--tick-ms"), nullptr, 10) * mantle::kMsec;
    } else if (a == "--json") {
      opt.json = true;
    } else if (a == "--check") {
      opt.check = true;
    } else if (a == "--write-reports") {
      opt.write_reports = true;
    } else if (a == "--help" || a == "-h") {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "mantle-stat: unknown option '%s'\n", a.c_str());
      usage(stderr);
      return kExitUsage;
    }
  }

  if (opt.chaos) {
    // Crash/recovery chatter for thousands of seeded runs would drown the
    // report; violations carry their own reproducers.
    mantle::Log::set_level(mantle::LogLevel::Error);
    mantle::chaos::ChaosConfig ccfg;
    ccfg.seed = opt.seed;
    ccfg.iters = opt.iters != 0 ? opt.iters : opt.quick ? 60 : 300;
    ccfg.hb_stale_guard = !opt.no_stale_guard;
    if (!opt.scenario.empty()) {
      ccfg.scenarios.clear();
      std::stringstream ss(opt.scenario);
      std::string item;
      while (std::getline(ss, item, ',')) {
        mantle::chaos::ScenarioKind k;
        if (!mantle::chaos::parse_scenario(item, k)) {
          std::fprintf(stderr, "mantle-stat: unknown chaos scenario '%s'\n",
                       item.c_str());
          return kExitUsage;
        }
        ccfg.scenarios.push_back(k);
      }
    }
    const mantle::chaos::ChaosResult res = mantle::chaos::run_chaos(ccfg);
    if (opt.json) {
      std::printf("%s\n", res.to_json().c_str());
    } else {
      std::printf(
          "chaos: seed=%llu %llu schedule(s), %llu fault(s) injected, "
          "%llu check(s), %llu shrink run(s), %zu violation(s)\n",
          static_cast<unsigned long long>(ccfg.seed),
          static_cast<unsigned long long>(res.schedules),
          static_cast<unsigned long long>(res.faults_injected),
          static_cast<unsigned long long>(res.checks),
          static_cast<unsigned long long>(res.shrink_runs),
          res.violations.size());
      if (!res.ok()) std::printf("%s", res.corpus().c_str());
    }
    if (!res.ok() && !opt.repro_out.empty()) {
      std::ofstream out(opt.repro_out, std::ios::binary | std::ios::trunc);
      out << res.corpus();
    }
    return res.ok() ? 0 : kExitNoInput;
  }

  if (opt.fuzz) {
    // Hostile inputs are the whole point; per-case clamp warnings would
    // drown the report.
    mantle::Log::set_level(mantle::LogLevel::Error);
    mantle::safety::FuzzConfig fcfg;
    fcfg.seed = opt.seed;
    fcfg.iters = opt.iters != 0 ? opt.iters
                 : opt.quick   ? 800
                               : 10000;
    const mantle::safety::FuzzResult res = mantle::safety::run_fuzz(fcfg);
    if (opt.json) {
      std::printf("%s\n", res.to_json().c_str());
    } else {
      std::printf("fuzz: seed=%llu %llu iteration(s), %llu check(s), "
                  "%zu failure(s)\n",
                  static_cast<unsigned long long>(fcfg.seed),
                  static_cast<unsigned long long>(res.iterations),
                  static_cast<unsigned long long>(res.checks),
                  res.failures.size());
      if (!res.ok()) std::printf("%s", res.corpus().c_str());
    }
    if (!res.ok() && !opt.repro_out.empty()) {
      std::ofstream out(opt.repro_out, std::ios::binary | std::ios::trunc);
      out << res.corpus();
    }
    return std::min<int>(static_cast<int>(res.failures.size()), kExitCheckCap);
  }

  if (!opt.explain_dir.empty() || !opt.whatif_dir.empty()) {
    mantle::Log::set_level(mantle::LogLevel::Error);
    const std::string dir =
        !opt.explain_dir.empty() ? opt.explain_dir : opt.whatif_dir;
    constexpr const char* kSuffix = ".provenance.json";
    std::error_code ec;
    std::vector<std::string> dumps;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.size() > std::strlen(kSuffix) &&
          name.rfind(kSuffix) == name.size() - std::strlen(kSuffix))
        dumps.push_back(name);
    }
    if (ec) {
      std::fprintf(stderr, "mantle-stat: cannot read %s: %s\n", dir.c_str(),
                   ec.message().c_str());
      return kExitNoInput;
    }
    if (dumps.empty()) {
      std::fprintf(stderr, "mantle-stat: no *.provenance.json in %s\n",
                   dir.c_str());
      return kExitNoInput;
    }
    std::sort(dumps.begin(), dumps.end());

    if (!opt.explain_dir.empty()) {
      mantle::obs::ExplainOptions eopt;
      eopt.tick_us = opt.cfg.tick;
      eopt.tick = opt.tick;
      eopt.rank = opt.rank;
      for (const std::string& name : dumps) {
        const std::string stem =
            name.substr(0, name.size() - std::strlen(kSuffix));
        std::string prov_json;
        if (!read_file(dir + "/" + name, prov_json)) {
          std::fprintf(stderr, "mantle-stat: cannot read %s/%s\n",
                       dir.c_str(), name.c_str());
          return kExitNoInput;
        }
        const auto records = mantle::obs::parse_provenance_json(prov_json);
        // The sibling trace resolves shipments to committed/aborted.
        std::vector<mantle::obs::TraceEvent> events;
        std::string trace_json;
        if (read_file(dir + "/" + stem + ".trace.json", trace_json))
          events = mantle::obs::parse_trace_json(trace_json);
        std::printf("== %s ==\n%s\n", stem.c_str(),
                    mantle::obs::render_explain(records, events, eopt)
                        .c_str());
      }
      return 0;
    }

    mantle::core::MantlePolicy policy;
    const std::string perr =
        mantle::safety::load_policy(opt.whatif_policy, policy);
    if (!perr.empty()) {
      std::fprintf(stderr, "mantle-stat: %s\n", perr.c_str());
      return kExitShadowReject;
    }
    const std::string verr = mantle::core::validate_policy(policy);
    if (!verr.empty()) {
      std::fprintf(stderr, "mantle-stat: policy rejected before replay: %s\n",
                   verr.c_str());
      return kExitShadowReject;
    }
    std::uint64_t total_diffs = 0;
    std::string json_out = "{\"whatif\":{";
    bool first = true;
    for (const std::string& name : dumps) {
      const std::string stem =
          name.substr(0, name.size() - std::strlen(kSuffix));
      std::string prov_json;
      if (!read_file(dir + "/" + name, prov_json)) {
        std::fprintf(stderr, "mantle-stat: cannot read %s/%s\n", dir.c_str(),
                     name.c_str());
        return kExitNoInput;
      }
      const auto records = mantle::obs::parse_provenance_json(prov_json);
      const mantle::safety::WhatifResult res =
          mantle::safety::whatif_replay(records, policy);
      total_diffs += res.diff_count();
      if (opt.json) {
        if (!first) json_out += ",";
        first = false;
        json_out += "\"" + stem + "\":" + res.to_json();
      } else {
        std::printf("== whatif %s vs %s ==\n%s\n", opt.whatif_policy.c_str(),
                    stem.c_str(), res.to_table().c_str());
      }
    }
    if (opt.json) {
      json_out +=
          "},\"total_diffs\":" + std::to_string(total_diffs) + "}";
      std::printf("%s\n", json_out.c_str());
    } else {
      std::printf("%zu dump(s) replayed, %llu decision diff(s)\n",
                  dumps.size(),
                  static_cast<unsigned long long>(total_diffs));
    }
    return std::min<int>(static_cast<int>(total_diffs), kExitCheckCap);
  }

  if (!opt.shadow_trace.empty()) {
    mantle::Log::set_level(mantle::LogLevel::Error);
    std::string trace_json;
    if (!read_file(opt.shadow_trace, trace_json)) {
      std::fprintf(stderr, "mantle-stat: cannot read %s\n",
                   opt.shadow_trace.c_str());
      return kExitNoInput;
    }
    const auto events = mantle::obs::parse_trace_json(trace_json);
    if (events.empty()) {
      std::fprintf(stderr, "mantle-stat: no events in %s\n",
                   opt.shadow_trace.c_str());
      return kExitNoInput;
    }
    mantle::core::MantlePolicy policy;
    const std::string perr =
        mantle::safety::load_policy(opt.shadow_policy, policy);
    if (!perr.empty()) {
      std::fprintf(stderr, "mantle-stat: %s\n", perr.c_str());
      return kExitNoInput;
    }
    mantle::safety::ShadowConfig scfg;
    scfg.analyze = opt.cfg;
    const std::string verr =
        mantle::core::validate_policy(policy, scfg.budget);
    if (!verr.empty()) {
      std::fprintf(stderr, "mantle-stat: policy rejected before replay: %s\n",
                   verr.c_str());
      return kExitShadowReject;
    }
    const mantle::safety::ShadowVerdict v =
        mantle::safety::shadow_evaluate(events, policy, scfg);
    if (opt.json)
      std::printf("%s\n", v.to_json().c_str());
    else
      std::printf("== shadow %s vs %s ==\n%s", opt.shadow_policy.c_str(),
                  opt.shadow_trace.c_str(), v.to_table().c_str());
    return v.accepted ? 0 : kExitShadowReject;
  }

  std::vector<Analyzed> runs;

  if (!opt.scenario.empty()) {
    if (opt.scenario != "plain" && opt.scenario != "faulty") {
      std::fprintf(stderr, "mantle-stat: unknown scenario '%s'\n",
                   opt.scenario.c_str());
      return kExitUsage;
    }
    runs.push_back({opt.scenario + "-seed" + std::to_string(opt.seed),
                    run_inline(opt.scenario, opt.seed, opt.cfg)});
  } else {
    if (opt.dir.empty()) {
      std::fprintf(stderr,
                   "mantle-stat: no input (set --dir, $MANTLE_OBS_DIR or "
                   "--scenario)\n");
      return kExitNoInput;
    }
    std::error_code ec;
    std::vector<std::string> trace_files;
    for (const auto& entry :
         std::filesystem::directory_iterator(opt.dir, ec)) {
      const std::string name = entry.path().filename().string();
      constexpr const char* kSuffix = ".trace.json";
      if (name.size() > std::strlen(kSuffix) &&
          name.rfind(kSuffix) == name.size() - std::strlen(kSuffix))
        trace_files.push_back(name);
    }
    if (ec) {
      std::fprintf(stderr, "mantle-stat: cannot read %s: %s\n",
                   opt.dir.c_str(), ec.message().c_str());
      return kExitNoInput;
    }
    if (trace_files.empty()) {
      std::fprintf(stderr, "mantle-stat: no *.trace.json in %s\n",
                   opt.dir.c_str());
      return kExitNoInput;
    }
    // Filesystem order is arbitrary; sort so output (and any
    // first-tripped-detector reporting) is deterministic.
    std::sort(trace_files.begin(), trace_files.end());

    for (const std::string& name : trace_files) {
      const std::string stem =
          name.substr(0, name.size() - std::strlen(".trace.json"));
      std::string trace_json;
      if (!read_file(opt.dir + "/" + name, trace_json)) {
        std::fprintf(stderr, "mantle-stat: cannot read %s/%s\n",
                     opt.dir.c_str(), name.c_str());
        return kExitNoInput;
      }
      const auto events = mantle::obs::parse_trace_json(trace_json);
      std::string metrics_json;
      const bool have_metrics =
          read_file(opt.dir + "/" + stem + ".metrics.json", metrics_json);
      if (have_metrics) {
        // Full snapshot: locality counters plus the PR 8 event-pool
        // gauges and histogram quantiles in the report.
        const mantle::obs::MetricsSnapshot snap =
            mantle::obs::parse_metrics_json(metrics_json);
        runs.push_back({stem, mantle::obs::analyze(events, opt.cfg, snap)});
      } else {
        runs.push_back({stem, mantle::obs::analyze(events, opt.cfg,
                                                   nullptr)});
      }
    }
  }

  int tripped = 0;
  for (const Analyzed& r : runs) tripped += r.report.tripped();

  if (opt.write_reports && !opt.dir.empty()) {
    for (const Analyzed& r : runs) {
      const std::string path = opt.dir + "/" + r.stem + ".analysis.json";
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << r.report.to_json();
    }
  }

  if (opt.json) {
    std::string out = "{\"reports\":{";
    bool first = true;
    for (const Analyzed& r : runs) {
      if (!first) out += ",";
      first = false;
      out += "\"" + r.stem + "\":" + r.report.to_json();
    }
    out += "},\"tripped\":" + std::to_string(tripped) + "}";
    std::printf("%s\n", out.c_str());
  } else {
    for (const Analyzed& r : runs) {
      std::printf("== %s ==\n%s\n", r.stem.c_str(),
                  r.report.to_table().c_str());
    }
    std::printf("%zu run(s) analyzed, %d tripped detector(s)\n", runs.size(),
                tripped);
  }

  return opt.check ? std::min(tripped, kExitCheckCap) : 0;
}
